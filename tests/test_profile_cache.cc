// Profile-cache tests: counters, eviction, concurrency, persistence.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "compiler/profile_cache.h"
#include "nuop/decomposer.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

NuOpOptions
fastNuOp()
{
    NuOpOptions opts;
    opts.max_layers = 3;
    opts.multistarts = 2;
    opts.exact_threshold = 1.0 - 1e-6;
    return opts;
}

GateSpec
czSpec()
{
    return GateSpec{"S3", TemplateFamily::Fixed, cz()};
}

/** Temp file path removed on scope exit. */
struct TempFile
{
    std::string path;
    explicit TempFile(const std::string& name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
};

TEST(ProfileCacheCore, CountsHitsAndMisses)
{
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    cache.get(zz(0.3), czSpec(), decomposer);
    cache.get(zz(0.3), czSpec(), decomposer);
    cache.get(zz(0.7), czSpec(), decomposer);

    ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 0u);

    cache.resetStats();
    stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 2u); // entries survive a stats reset.
}

TEST(ProfileCacheCore, BoundedCacheEvictsLeastRecentlyUsed)
{
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache(2);
    auto first = cache.get(zz(0.1), czSpec(), decomposer);
    cache.get(zz(0.2), czSpec(), decomposer);
    cache.get(zz(0.1), czSpec(), decomposer); // refresh 0.1
    cache.get(zz(0.3), czSpec(), decomposer); // evicts 0.2
    ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 1u);

    // 0.1 was refreshed, so it survived; 0.2 recomputes (miss).
    uint64_t misses_before = cache.stats().misses;
    cache.get(zz(0.1), czSpec(), decomposer);
    EXPECT_EQ(cache.stats().misses, misses_before);
    cache.get(zz(0.2), czSpec(), decomposer);
    EXPECT_EQ(cache.stats().misses, misses_before + 1);

    // The handle returned before any eviction is still valid.
    EXPECT_FALSE(first->fits.empty());
}

TEST(ProfileCacheCore, ConcurrentGetIsConsistent)
{
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    ThreadPool pool(8);

    const int kDistinct = 4;
    const size_t kCalls = 64;
    std::vector<std::shared_ptr<const GateProfile>> seen(kCalls);
    parallelFor(pool, kCalls, [&](size_t i) {
        double theta = 0.2 + 0.1 * static_cast<double>(i % kDistinct);
        seen[i] = cache.get(zz(theta), czSpec(), decomposer);
    });

    EXPECT_EQ(cache.size(), static_cast<size_t>(kDistinct));
    ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, kCalls);
    EXPECT_GE(stats.misses, static_cast<uint64_t>(kDistinct));

    // Every call for the same target observed the same stored profile.
    for (size_t i = 0; i < kCalls; ++i) {
        ASSERT_NE(seen[i], nullptr);
        EXPECT_EQ(seen[i].get(), seen[i % kDistinct].get());
    }
}

TEST(ProfileCacheCore, SaveLoadRoundTrip)
{
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    auto a = cache.get(zz(0.3), czSpec(), decomposer);
    GateSpec isw{"S4", TemplateFamily::Fixed, iswap()};
    auto b = cache.get(zz(0.3), isw, decomposer);

    TempFile file("qiset_profile_cache_roundtrip.txt");
    ASSERT_TRUE(cache.save(file.path, fastNuOp()));

    ProfileCache restored;
    ASSERT_TRUE(restored.load(file.path, fastNuOp()));
    ProfileCacheStats stats = restored.stats();
    EXPECT_EQ(stats.loaded, 2u);
    EXPECT_EQ(stats.entries, 2u);

    // Reading back the same (target, spec) pairs is pure cache hits —
    // zero new BFGS optimizations — and reproduces the fits exactly.
    auto a2 = restored.get(zz(0.3), czSpec(), decomposer);
    auto b2 = restored.get(zz(0.3), isw, decomposer);
    stats = restored.stats();
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.hits, 2u);

    ASSERT_EQ(a2->fits.size(), a->fits.size());
    for (size_t i = 0; i < a->fits.size(); ++i) {
        EXPECT_EQ(a2->fits[i].layers, a->fits[i].layers);
        EXPECT_EQ(a2->fits[i].fd, a->fits[i].fd); // %.17g is lossless
        EXPECT_EQ(a2->fits[i].params, a->fits[i].params);
    }
    EXPECT_EQ(b2->type_name, "S4");
    EXPECT_EQ(b2->unitary.maxAbsDiff(iswap()), 0.0);
}

TEST(ProfileCacheCore, LoadMergesWithoutOverwriting)
{
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    auto original = cache.get(zz(0.3), czSpec(), decomposer);

    TempFile file("qiset_profile_cache_merge.txt");
    ASSERT_TRUE(cache.save(file.path, fastNuOp()));

    // Loading into a cache that already has the key keeps the
    // in-memory profile and counts nothing as loaded.
    ASSERT_TRUE(cache.load(file.path, fastNuOp()));
    EXPECT_EQ(cache.stats().loaded, 0u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.get(zz(0.3), czSpec(), decomposer).get(),
              original.get());
}

TEST(ProfileCacheCore, LoadRejectsMissingAndMalformedFiles)
{
    ProfileCache cache;
    EXPECT_FALSE(cache.load("/nonexistent/path/cache.txt", fastNuOp()));

    TempFile file("qiset_profile_cache_garbage.txt");
    {
        std::ofstream os(file.path);
        os << "not-a-cache 99\ngarbage\n";
    }
    EXPECT_FALSE(cache.load(file.path, fastNuOp()));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ProfileCacheCore, LoadRejectsMismatchedNuOpOptions)
{
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    cache.get(zz(0.3), czSpec(), decomposer);

    TempFile file("qiset_profile_cache_stale.txt");
    ASSERT_TRUE(cache.save(file.path, fastNuOp()));

    // Any change to the optimizer settings the profiles were computed
    // under invalidates the whole file.
    auto expect_rejected = [&](NuOpOptions changed) {
        ProfileCache fresh;
        EXPECT_FALSE(fresh.load(file.path, changed));
        EXPECT_EQ(fresh.size(), 0u);
        EXPECT_EQ(fresh.stats().loaded, 0u);
    };
    NuOpOptions more_layers = fastNuOp();
    more_layers.max_layers += 1;
    expect_rejected(more_layers);
    NuOpOptions more_starts = fastNuOp();
    more_starts.multistarts += 1;
    expect_rejected(more_starts);
    NuOpOptions tighter = fastNuOp();
    tighter.exact_threshold = 1.0 - 1e-9;
    expect_rejected(tighter);
    NuOpOptions reseeded = fastNuOp();
    reseeded.seed += 1;
    expect_rejected(reseeded);

    // The exact settings still load.
    ProfileCache fresh;
    EXPECT_TRUE(fresh.load(file.path, fastNuOp()));
    EXPECT_EQ(fresh.stats().loaded, 1u);
}

TEST(ProfileCacheCore, LoadRejectsUnstampedLegacyFiles)
{
    // v1 files (no NuOp stamp) and v2 files (no strategy stamp)
    // cannot prove their profiles match the current configuration:
    // reject rather than risk stale or wrongly-keyed reuse.
    for (const char* header :
         {"qiset-profile-cache 1\n0\n",
          "qiset-profile-cache 2\nnuop 3 2 0.999999 17\n0\n"}) {
        TempFile file("qiset_profile_cache_legacy.txt");
        {
            std::ofstream os(file.path);
            os << header;
        }
        ProfileCache cache;
        EXPECT_FALSE(cache.load(file.path, fastNuOp())) << header;
        EXPECT_EQ(cache.size(), 0u);
    }
}

TEST(ProfileCacheCore, V3RoundTripsCanonicalStrategies)
{
    // A canonical-keyed cache saved under "auto" reloads under "auto"
    // — entries, keys and engine tags intact — and serves the dressed
    // variants of its classes as pure hits.
    NuOpDecomposer decomposer(fastNuOp());
    auto automatic = makeDecompositionStrategy("auto");
    ProfileCache cache;
    cache.get(zz(0.3), czSpec(), decomposer, *automatic);

    TempFile file("qiset_profile_cache_v3_auto.txt");
    ASSERT_TRUE(cache.save(file.path, fastNuOp(), *automatic));

    ProfileCache restored;
    ASSERT_TRUE(restored.load(file.path, fastNuOp(), *automatic));
    EXPECT_EQ(restored.stats().loaded, 1u);
    Matrix dressed = gates::u3(0.4, 1.1, 2.2)
                         .kron(gates::u3(0.7, 0.2, 1.9)) *
                     zz(0.3);
    auto profile =
        restored.get(dressed, czSpec(), decomposer, *automatic);
    EXPECT_EQ(restored.stats().misses, 0u);
    EXPECT_EQ(restored.stats().hits, 1u);
    EXPECT_EQ(profile->engine, "kak"); // analytic tier served zz-class
}

TEST(ProfileCacheCore, LoadRejectsMismatchedStrategy)
{
    // Raw "nuop" keys and canonical "auto"/"kak" keys are not
    // interchangeable; files stamped with a different strategy are
    // rejected wholesale.
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    cache.get(zz(0.3), czSpec(), decomposer);

    TempFile file("qiset_profile_cache_strategy.txt");
    ASSERT_TRUE(cache.save(file.path, fastNuOp()));
    ProfileCache fresh;
    EXPECT_FALSE(fresh.load(file.path, fastNuOp(),
                            *makeDecompositionStrategy("auto")));
    EXPECT_EQ(fresh.size(), 0u);
    EXPECT_TRUE(fresh.load(file.path, fastNuOp(),
                           *makeDecompositionStrategy("nuop")));
    EXPECT_EQ(fresh.stats().loaded, 1u);
}

TEST(ProfileCacheCore, StripeContentionKeepsExactCounts)
{
    // Readers and writers hammer the striped cache concurrently; every
    // hit, miss and eviction must be accounted for exactly (shared-
    // lock hits update recency and counters atomically, so nothing is
    // lost or double-counted).
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache; // unbounded: 16 stripes
    ThreadPool pool(8);

    const int kDistinct = 12; // spreads keys across stripes
    auto target = [](int i) {
        return zz(0.05 * static_cast<double>(i + 1));
    };

    // Phase 1: cold fill under contention. Exactly kDistinct entries
    // come out, and every one of the kCalls is tallied exactly once.
    const size_t kCalls = 768;
    std::vector<std::shared_ptr<const GateProfile>> seen(kCalls);
    parallelFor(pool, kCalls, [&](size_t i) {
        seen[i] = cache.get(target(static_cast<int>(i) % kDistinct),
                            czSpec(), decomposer);
    });
    ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, kCalls);
    EXPECT_GE(stats.misses, static_cast<uint64_t>(kDistinct));
    EXPECT_EQ(stats.entries, static_cast<size_t>(kDistinct));
    EXPECT_EQ(stats.evictions, 0u);
    for (size_t i = 0; i < kCalls; ++i) {
        ASSERT_NE(seen[i], nullptr);
        EXPECT_EQ(seen[i].get(),
                  seen[i % static_cast<size_t>(kDistinct)].get());
    }

    // Phase 2: pure read contention on a warm cache. Every call is a
    // shared-lock hit — the counts are exact, not approximate.
    cache.resetStats();
    parallelFor(pool, kCalls, [&](size_t i) {
        auto p = cache.get(target(static_cast<int>(i) % kDistinct),
                           czSpec(), decomposer);
        ASSERT_NE(p, nullptr);
    });
    stats = cache.stats();
    EXPECT_EQ(stats.hits, kCalls);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.entries, static_cast<size_t>(kDistinct));

    // Phase 3: bounded cache under mixed reader/writer contention.
    // Hits + misses still account for every call exactly, and the
    // entry count respects the bound.
    ProfileCache bounded(2);
    const size_t kBoundedCalls = 256;
    parallelFor(pool, kBoundedCalls, [&](size_t i) {
        auto p = cache.get(target(static_cast<int>(i) % 4), czSpec(),
                           decomposer); // warm reads on the big cache
        ASSERT_NE(p, nullptr);
        auto q = bounded.get(target(static_cast<int>(i) % 4), czSpec(),
                             decomposer);
        ASSERT_NE(q, nullptr);
    });
    ProfileCacheStats bstats = bounded.stats();
    EXPECT_EQ(bstats.hits + bstats.misses, kBoundedCalls);
    EXPECT_LE(bstats.entries, 2u);
    // Every insert past the bound evicted exactly one entry; inserts
    // can be fewer than misses (racing computes merge) but evictions
    // never exceed inserts minus the survivors.
    EXPECT_GE(bstats.misses, bstats.evictions + bstats.entries);
}

TEST(ProfileCacheCore, KeySeparatesTargetsAndSpecs)
{
    GateSpec cz_spec = czSpec();
    GateSpec isw{"S4", TemplateFamily::Fixed, iswap()};
    EXPECT_NE(ProfileCache::key(zz(0.3), cz_spec),
              ProfileCache::key(zz(0.4), cz_spec));
    EXPECT_NE(ProfileCache::key(zz(0.3), cz_spec),
              ProfileCache::key(zz(0.3), isw));
    EXPECT_EQ(ProfileCache::key(zz(0.3), cz_spec),
              ProfileCache::key(zz(0.3), cz_spec));
}

} // namespace
} // namespace qiset
