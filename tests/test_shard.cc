// Sharded batch compilation tests: balanced region carving, region
// extraction correctness, planner determinism and load balance, and
// bit-identity of sharded results with single-device compiles.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "compiler/shard.h"

namespace qiset {
namespace {

CompileOptions
fastCompile()
{
    CompileOptions opts;
    opts.nuop.max_layers = 4;
    opts.nuop.multistarts = 3;
    opts.nuop.exact_threshold = 1.0 - 1e-6;
    return opts;
}

Device
lineDevice(const std::string& name, int n, double fid)
{
    Device d(name, Topology::line(n));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", fid);
        d.setEdgeFidelity(a, b, "S4", fid - 0.005);
    }
    for (int q = 0; q < n; ++q)
        d.setOneQubitError(q, 0.0005);
    return d;
}

std::vector<Circuit>
makeWorkload(int circuits, int qubits)
{
    std::vector<Circuit> apps;
    Rng rng(401);
    for (int i = 0; i < circuits; ++i)
        apps.push_back(i % 2 == 0 ? makeQftCircuit(qubits)
                                  : makeRandomQaoaCircuit(qubits, rng));
    return apps;
}

void
expectIdentical(const CompileResult& a, const CompileResult& b)
{
    EXPECT_EQ(a.physical, b.physical);
    EXPECT_EQ(a.initial_positions, b.initial_positions);
    EXPECT_EQ(a.final_positions, b.final_positions);
    EXPECT_EQ(a.swaps_inserted, b.swaps_inserted);
    EXPECT_EQ(a.two_qubit_count, b.two_qubit_count);
    EXPECT_EQ(a.type_usage, b.type_usage);
    EXPECT_DOUBLE_EQ(a.estimated_fidelity, b.estimated_fidelity);
    ASSERT_EQ(a.circuit.size(), b.circuit.size());
    for (size_t i = 0; i < a.circuit.size(); ++i) {
        ConstOpRef x = a.circuit.ops()[i];
        ConstOpRef y = b.circuit.ops()[i];
        EXPECT_EQ(x.qubits(), y.qubits());
        EXPECT_EQ(x.labelId(), y.labelId());
        EXPECT_DOUBLE_EQ(x.errorRate(), y.errorRate());
        EXPECT_EQ(x.unitary().maxAbsDiff(y.unitary()), 0.0);
    }
}

// ------------------------------------------------- region primitives

TEST(BalancedPartitions, DisjointConnectedAndCovering)
{
    Topology grid = Topology::grid(4, 4);
    for (int count : {1, 2, 3, 4}) {
        SCOPED_TRACE("count " + std::to_string(count));
        auto regions = grid.balancedPartitions(count);
        ASSERT_EQ(regions.size(), static_cast<size_t>(count));
        std::set<int> seen;
        for (const auto& region : regions) {
            EXPECT_FALSE(region.empty());
            EXPECT_TRUE(
                grid.inducedSubgraph(region).connected());
            for (int q : region) {
                EXPECT_TRUE(seen.insert(q).second)
                    << "qubit " << q << " in two regions";
            }
        }
        EXPECT_EQ(seen.size(), 16u) << "partition must cover the device";
        // Roughly equal: no region more than twice another.
        size_t smallest = regions.front().size();
        size_t largest = regions.front().size();
        for (const auto& region : regions) {
            smallest = std::min(smallest, region.size());
            largest = std::max(largest, region.size());
        }
        EXPECT_LE(largest, 2 * smallest);
    }
}

TEST(BalancedPartitions, DeterministicAcrossCalls)
{
    Topology grid = Topology::grid(3, 5);
    EXPECT_EQ(grid.balancedPartitions(3), grid.balancedPartitions(3));
}

TEST(BalancedPartitions, RejectsBadCountAndDisconnected)
{
    Topology line = Topology::line(4);
    EXPECT_ANY_THROW(line.balancedPartitions(0));
    EXPECT_ANY_THROW(line.balancedPartitions(5));
    Topology disconnected(4);
    disconnected.addEdge(0, 1);
    disconnected.addEdge(2, 3);
    EXPECT_ANY_THROW(disconnected.balancedPartitions(2));
}

TEST(ExtractRegion, PreservesCalibrationAndRelabels)
{
    Device d("parent", Topology::grid(2, 3));
    int edge_index = 0;
    for (auto [a, b] : d.topology().edges())
        d.setEdgeFidelity(a, b, "S3", 0.99 - 0.001 * edge_index++);
    for (int q = 0; q < 6; ++q) {
        d.setOneQubitError(q, 0.0001 * (q + 1));
        QubitNoise noise;
        noise.t1_ns = 1000.0 * (q + 1);
        d.setQubitNoise(q, noise);
    }
    d.setTwoQubitDuration(42.0);
    d.setOneQubitDuration(21.0);

    // Right 2x2 block of the 2x3 grid: qubits 1, 2, 4, 5.
    std::vector<int> qubits = {1, 2, 4, 5};
    Device region = d.extractRegion(qubits, "parent/right");

    EXPECT_EQ(region.name(), "parent/right");
    EXPECT_EQ(region.numQubits(), 4);
    EXPECT_EQ(region.topology().numEdges(), 4);
    EXPECT_EQ(region.twoQubitDurationNs(), 42.0);
    EXPECT_EQ(region.oneQubitDurationNs(), 21.0);
    for (size_t i = 0; i < qubits.size(); ++i) {
        EXPECT_EQ(region.oneQubitError(static_cast<int>(i)),
                  d.oneQubitError(qubits[i]));
        EXPECT_EQ(region.qubitNoise(static_cast<int>(i)).t1_ns,
                  d.qubitNoise(qubits[i]).t1_ns);
    }
    for (size_t i = 0; i < qubits.size(); ++i)
        for (size_t j = i + 1; j < qubits.size(); ++j)
            EXPECT_EQ(region.edgeFidelity(static_cast<int>(i),
                                          static_cast<int>(j), "S3"),
                      d.edgeFidelity(qubits[i], qubits[j], "S3"));

    EXPECT_ANY_THROW(d.extractRegion({}));
    EXPECT_ANY_THROW(d.extractRegion({0, 0}));
    EXPECT_ANY_THROW(d.extractRegion({0, 99}));
}

// --------------------------------------------------------- planning

TEST(ShardPlan, DeterministicUnderFixedSeeds)
{
    GateSet set = isa::rigettiSet(1);
    CompileOptions opts = fastCompile();
    std::vector<Circuit> apps = makeWorkload(8, 3);

    auto makeFleet = [&] {
        DeviceFleet fleet(opts);
        fleet.addDevice(lineDevice("alpha", 4, 0.995));
        fleet.addDevice(lineDevice("beta", 4, 0.990));
        return fleet;
    };
    DeviceFleet fleet_a = makeFleet();
    DeviceFleet fleet_b = makeFleet();

    ShardPlan plan_a = planShardAssignments(apps, fleet_a, set);
    ShardPlan plan_b = planShardAssignments(apps, fleet_b, set);
    ASSERT_EQ(plan_a.assignments.size(), plan_b.assignments.size());
    for (size_t i = 0; i < plan_a.assignments.size(); ++i) {
        EXPECT_EQ(plan_a.assignments[i].shard,
                  plan_b.assignments[i].shard);
        EXPECT_DOUBLE_EQ(plan_a.assignments[i].predicted_fidelity,
                         plan_b.assignments[i].predicted_fidelity);
    }
    EXPECT_EQ(plan_a.queues, plan_b.queues);
}

TEST(ShardPlan, GreedyBalancesIdenticalShards)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(lineDevice("alpha", 4, 0.995));
    fleet.addDevice(lineDevice("beta", 4, 0.995));
    std::vector<Circuit> apps = makeWorkload(8, 3);

    ShardPlan plan = planShardAssignments(apps, fleet, set);
    ASSERT_EQ(plan.queues.size(), 2u);
    EXPECT_EQ(plan.queues[0].size() + plan.queues[1].size(), 8u);
    // Identical shards, comparable circuits: the queue-depth penalty
    // must keep the split even.
    EXPECT_GE(plan.queues[0].size(), 3u);
    EXPECT_GE(plan.queues[1].size(), 3u);
}

TEST(ShardPlan, PrefersHigherFidelityShardWhenLoadIsFree)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(lineDevice("worse", 4, 0.95));
    fleet.addDevice(lineDevice("better", 4, 0.999));
    std::vector<Circuit> apps = makeWorkload(6, 3);

    ShardPlannerOptions planner;
    planner.load_weight = 0.0;
    ShardPlan plan = planShardAssignments(apps, fleet, set, planner);
    for (const ShardAssignment& a : plan.assignments)
        EXPECT_EQ(a.shard, 1) << "load-free planning must chase fidelity";
}

TEST(ShardPlan, RoundRobinCyclesFeasibleShards)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(lineDevice("alpha", 4, 0.995));
    fleet.addDevice(lineDevice("beta", 4, 0.995));
    std::vector<Circuit> apps = makeWorkload(6, 3);

    ShardPlannerOptions planner;
    planner.policy = "round-robin";
    ShardPlan plan = planShardAssignments(apps, fleet, set, planner);
    for (size_t c = 0; c < apps.size(); ++c)
        EXPECT_EQ(plan.assignments[c].shard, static_cast<int>(c % 2));
}

TEST(ShardPlan, SkipsShardsTooSmallAndThrowsWhenNoneFit)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(lineDevice("tiny", 2, 0.995));
    fleet.addDevice(lineDevice("big", 5, 0.990));
    std::vector<Circuit> apps = {makeQftCircuit(4)};

    ShardPlan plan = planShardAssignments(apps, fleet, set);
    EXPECT_EQ(plan.assignments[0].shard, 1);

    DeviceFleet small_fleet(fastCompile());
    small_fleet.addDevice(lineDevice("tiny", 2, 0.995));
    EXPECT_ANY_THROW(planShardAssignments(apps, small_fleet, set));
    EXPECT_ANY_THROW(
        planShardAssignments(apps, DeviceFleet(fastCompile()), set));

    ShardPlannerOptions bad;
    bad.policy = "nope";
    EXPECT_ANY_THROW(planShardAssignments(apps, fleet, set, bad));
}

// -------------------------------------------------------- execution

TEST(CompileBatchSharded, BitIdenticalToSingleDeviceCompiles)
{
    GateSet set = isa::rigettiSet(1);
    CompileOptions opts = fastCompile();
    DeviceFleet fleet(opts);
    fleet.addDevice(lineDevice("alpha", 4, 0.995));
    fleet.addDevice(lineDevice("beta", 4, 0.990));
    std::vector<Circuit> apps = makeWorkload(8, 3);

    ProfileCache cache;
    ThreadPool pool(4);
    ShardedBatchResult sharded =
        compileBatchSharded(apps, fleet, set, cache, {}, &pool);

    ASSERT_EQ(sharded.results.size(), apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
        SCOPED_TRACE("circuit " + std::to_string(i));
        int s = sharded.plan.assignments[i].shard;
        ASSERT_GE(s, 0);
        const Shard& shard = fleet.shard(static_cast<size_t>(s));
        ProfileCache solo_cache;
        CompileResult solo = compileCircuit(apps[i], shard.device, set,
                                            solo_cache, shard.options);
        expectIdentical(solo, sharded.results[i]);
    }

    // Per-shard roll-ups line up with the plan.
    ASSERT_EQ(sharded.shard_metrics.size(), 2u);
    size_t rolled_up = 0;
    for (size_t s = 0; s < fleet.size(); ++s) {
        const PassMetric& metric = sharded.shard_metrics[s];
        EXPECT_EQ(metric.pass, "shard:" + fleet.shard(s).name);
        EXPECT_EQ(metric.counters.at("assigned"),
                  static_cast<double>(sharded.plan.queues[s].size()));
        rolled_up += static_cast<size_t>(metric.counters.at("assigned"));
        if (!sharded.plan.queues[s].empty()) {
            EXPECT_GT(metric.counters.at("mean_estimated_fidelity"), 0.0);
            EXPECT_FALSE(sharded.shard_pass_rollups[s].empty());
        }
    }
    EXPECT_EQ(rolled_up, apps.size());
}

TEST(CompileBatchSharded, SerialAndParallelAgree)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(lineDevice("alpha", 4, 0.995));
    fleet.addDevice(lineDevice("beta", 4, 0.990));
    std::vector<Circuit> apps = makeWorkload(6, 3);

    ProfileCache serial_cache;
    ShardedBatchResult serial =
        compileBatchSharded(apps, fleet, set, serial_cache);
    ProfileCache parallel_cache;
    ThreadPool pool(4);
    ShardedBatchResult parallel =
        compileBatchSharded(apps, fleet, set, parallel_cache, {}, &pool);

    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (size_t i = 0; i < serial.results.size(); ++i) {
        SCOPED_TRACE("circuit " + std::to_string(i));
        EXPECT_EQ(serial.plan.assignments[i].shard,
                  parallel.plan.assignments[i].shard);
        expectIdentical(serial.results[i], parallel.results[i]);
    }
}

TEST(CompileBatchSharded, RegionCarvedFleetMatchesExtractedDevices)
{
    GateSet set = isa::rigettiSet(1);
    CompileOptions opts = fastCompile();

    Device big = lineDevice("big", 8, 0.995);
    DeviceFleet fleet(opts);
    fleet.addRegions(big, 2);
    ASSERT_EQ(fleet.size(), 2u);
    EXPECT_EQ(fleet.shard(0).device.numQubits(), 4);
    EXPECT_EQ(fleet.shard(1).device.numQubits(), 4);

    std::vector<Circuit> apps = makeWorkload(6, 3);
    ProfileCache cache;
    ThreadPool pool(4);
    ShardedBatchResult sharded =
        compileBatchSharded(apps, fleet, set, cache, {}, &pool);
    for (size_t i = 0; i < apps.size(); ++i) {
        SCOPED_TRACE("circuit " + std::to_string(i));
        const Shard& shard = fleet.shard(
            static_cast<size_t>(sharded.plan.assignments[i].shard));
        ProfileCache solo_cache;
        CompileResult solo = compileCircuit(apps[i], shard.device, set,
                                            solo_cache, shard.options);
        expectIdentical(solo, sharded.results[i]);
    }
}

TEST(CompileBatchSharded, RejectsMismatchedNuOpSettings)
{
    GateSet set = isa::rigettiSet(1);
    CompileOptions opts_a = fastCompile();
    CompileOptions opts_b = fastCompile();
    opts_b.nuop.seed = 99;

    DeviceFleet fleet;
    fleet.addDevice(lineDevice("alpha", 4, 0.995), opts_a);
    fleet.addDevice(lineDevice("beta", 4, 0.990), opts_b);
    std::vector<Circuit> apps = makeWorkload(2, 3);
    ProfileCache cache;
    EXPECT_ANY_THROW(compileBatchSharded(apps, fleet, set, cache));

    // The inner BFGS knobs shape cached profiles too, so a
    // bfgs-only divergence must also be rejected.
    CompileOptions opts_c = fastCompile();
    opts_c.nuop.bfgs.max_iterations = 10;
    DeviceFleet bfgs_fleet;
    bfgs_fleet.addDevice(lineDevice("alpha", 4, 0.995), opts_a);
    bfgs_fleet.addDevice(lineDevice("beta", 4, 0.990), opts_c);
    EXPECT_ANY_THROW(compileBatchSharded(apps, bfgs_fleet, set, cache));
}

// ------------------------------------- per-shard routing / SabreOptions

TEST(CompileOptionsSabre, RefinementRoundsControlStartLayout)
{
    GateSet set = isa::rigettiSet(1);
    Device d = lineDevice("line6", 6, 0.995);
    std::vector<int> identity = {0, 1, 2, 3, 4, 5};

    CompileOptions no_refine = fastCompile();
    no_refine.routing = "sabre";
    no_refine.sabre.refinement_rounds = 0;
    ProfileCache cache_a;
    CompileResult plain = compileCircuit(makeQftCircuit(6), d, set,
                                         cache_a, no_refine);
    EXPECT_EQ(plain.initial_positions, identity)
        << "refinement_rounds=0 must keep the identity start layout";

    // The knob must actually reach the router: neutering the lookahead
    // and refinement changes the SWAP sequence on a long-range QFT.
    CompileOptions neutered = no_refine;
    neutered.sabre.extended_set_size = 0;
    neutered.sabre.extended_set_weight = 0.0;
    CompileOptions tuned = fastCompile();
    tuned.routing = "sabre";
    ProfileCache cache_b;
    ProfileCache cache_c;
    CompileResult weak = compileCircuit(makeQftCircuit(6), d, set,
                                        cache_b, neutered);
    CompileResult strong = compileCircuit(makeQftCircuit(6), d, set,
                                          cache_c, tuned);
    bool routed_differently =
        weak.swaps_inserted != strong.swaps_inserted ||
        weak.initial_positions != strong.initial_positions;
    EXPECT_TRUE(routed_differently)
        << "SabreOptions in CompileOptions must reach the router";
}

} // namespace
} // namespace qiset
