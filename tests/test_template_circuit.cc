// Template-circuit tests (Fig. 4 structure).

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "nuop/template_circuit.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

TEST(Template, ParamCounts)
{
    TwoQubitTemplate fixed(3, cz());
    EXPECT_EQ(fixed.numParams(), 6 * 4);
    TwoQubitTemplate xy_t(2, TemplateFamily::FullXy);
    EXPECT_EQ(xy_t.numParams(), 6 * 3 + 2);
    TwoQubitTemplate fsim_t(2, TemplateFamily::FullFsim);
    EXPECT_EQ(fsim_t.numParams(), 6 * 3 + 4);
}

TEST(Template, ZeroLayersIsLocalOnly)
{
    TwoQubitTemplate t(0, cz());
    std::vector<double> params(t.numParams(), 0.0);
    // All-zero U3s are identities.
    EXPECT_LT(t.build(params).maxAbsDiff(Matrix::identity(4)), 1e-12);
}

TEST(Template, OneLayerZeroU3sIsTheGate)
{
    TwoQubitTemplate t(1, sycamore());
    std::vector<double> params(t.numParams(), 0.0);
    EXPECT_LT(t.build(params).maxAbsDiff(sycamore()), 1e-12);
}

TEST(Template, BuildIsAlwaysUnitary)
{
    Rng rng(17);
    TwoQubitTemplate t(3, iswap());
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<double> params(t.numParams());
        for (auto& p : params)
            p = rng.uniform(0.0, 2.0 * kPi);
        EXPECT_TRUE(t.build(params).isUnitary(1e-10));
    }
}

TEST(Template, InfidelityZeroWhenTargetIsRealizable)
{
    // Target: the template's own output for some parameter choice.
    TwoQubitTemplate t(2, sqrtIswap());
    Rng rng(23);
    std::vector<double> params(t.numParams());
    for (auto& p : params)
        p = rng.uniform(0.0, 2.0 * kPi);
    Matrix target = t.build(params);
    EXPECT_NEAR(t.infidelity(params, target), 0.0, 1e-12);
}

TEST(Template, InfidelityBoundedByOne)
{
    TwoQubitTemplate t(1, cz());
    std::vector<double> params(t.numParams(), 0.3);
    double inf = t.infidelity(params, swap());
    EXPECT_GE(inf, 0.0);
    EXPECT_LE(inf, 1.0);
}

TEST(Template, FullFsimLayerAnglesRoundTrip)
{
    TwoQubitTemplate t(2, TemplateFamily::FullFsim);
    std::vector<double> params(t.numParams(), 0.0);
    // Layer 0 gate params live right after the first 6 U3 angles.
    params[6] = 0.9;
    params[7] = 1.7;
    // Layer 1 gate params after 6 + 2 + 6 entries.
    params[14] = 0.2;
    params[15] = 0.4;
    auto angles0 = t.layerGateAngles(params, 0);
    auto angles1 = t.layerGateAngles(params, 1);
    EXPECT_NEAR(angles0[0], 0.9, 1e-12);
    EXPECT_NEAR(angles0[1], 1.7, 1e-12);
    EXPECT_NEAR(angles1[0], 0.2, 1e-12);
    EXPECT_NEAR(angles1[1], 0.4, 1e-12);
}

TEST(Template, LayerGateMatchesAngles)
{
    TwoQubitTemplate t(1, TemplateFamily::FullXy);
    std::vector<double> params(t.numParams(), 0.0);
    params[6] = 1.1; // XY angle of layer 0
    EXPECT_LT(t.layerGate(params, 0).maxAbsDiff(xy(1.1)), 1e-12);
}

TEST(Template, U3MatricesReconstructBuild)
{
    TwoQubitTemplate t(2, sycamore());
    Rng rng(31);
    std::vector<double> params(t.numParams());
    for (auto& p : params)
        p = rng.uniform(0.0, 2.0 * kPi);

    auto u3s = t.u3Matrices(params);
    ASSERT_EQ(u3s.size(), 6u);
    Matrix rebuilt = u3s[0].kron(u3s[1]);
    for (int layer = 0; layer < 2; ++layer) {
        rebuilt = t.layerGate(params, layer) * rebuilt;
        rebuilt =
            u3s[2 * (layer + 1)].kron(u3s[2 * (layer + 1) + 1]) * rebuilt;
    }
    EXPECT_LT(rebuilt.maxAbsDiff(t.build(params)), 1e-10);
}

TEST(Template, FixedConstructorRejectsWrongShape)
{
    EXPECT_THROW(TwoQubitTemplate(1, hadamard()), FatalError);
}

TEST(Template, WrongParamArityThrows)
{
    TwoQubitTemplate t(1, cz());
    EXPECT_THROW(t.build(std::vector<double>(5, 0.0)), FatalError);
}

} // namespace
} // namespace qiset
