// Chiplet subsystem tests: grid-of-grids device construction, core /
// teleport-link metadata, comm-qubit reservation exclusivity, the
// TeleportRouter's bit-identity with SABRE on single-core devices,
// capacity-aware placement and shard planning, per-shard in-flight
// caps, cost-model telemetry surfacing, and the teleport trace
// events' conformance to scripts/trace_lint.py.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "compiler/mapping.h"
#include "compiler/pipeline.h"
#include "compiler/routing_strategy.h"
#include "compiler/service.h"
#include "compiler/shard.h"
#include "compiler/teleport_router.h"
#include "device/device.h"
#include "isa/gate_set.h"
#include "metrics/trace_export.h"

namespace qiset {
namespace {

CompileOptions
fastCompile()
{
    CompileOptions opts;
    opts.nuop.max_layers = 4;
    opts.nuop.multistarts = 3;
    opts.nuop.exact_threshold = 1.0 - 1e-6;
    return opts;
}

Device
lineDevice(const std::string& name, int n, double fid)
{
    Device d(name, Topology::line(n));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", fid);
        d.setEdgeFidelity(a, b, "S4", fid - 0.005);
    }
    for (int q = 0; q < n; ++q)
        d.setOneQubitError(q, 0.0005);
    return d;
}

Device
chiplet2x2(uint64_t seed = 77)
{
    Rng rng(seed);
    ChipletSpec spec;
    spec.core_rows = 2;
    spec.core_cols = 2;
    spec.rows = 2;
    spec.cols = 3;
    return makeChipletDevice(spec, rng);
}

void
expectIdenticalRouted(const RoutedCircuit& a, const RoutedCircuit& b)
{
    EXPECT_EQ(a.initial_positions, b.initial_positions);
    EXPECT_EQ(a.final_positions, b.final_positions);
    EXPECT_EQ(a.swaps_inserted, b.swaps_inserted);
    EXPECT_EQ(a.teleports_inserted, b.teleports_inserted);
    ASSERT_EQ(a.circuit.size(), b.circuit.size());
    for (size_t i = 0; i < a.circuit.size(); ++i) {
        ConstOpRef x = a.circuit.ops()[i];
        ConstOpRef y = b.circuit.ops()[i];
        EXPECT_EQ(x.qubits(), y.qubits());
        EXPECT_EQ(x.labelId(), y.labelId());
        EXPECT_EQ(x.unitary().maxAbsDiff(y.unitary()), 0.0);
    }
}

// ------------------------------------------------ device construction

TEST(GridOfGrids, ConstructionAndCoreMetadata)
{
    Topology topo = Topology::gridOfGrids(2, 3, 2, 2);
    EXPECT_EQ(topo.numQubits(), 24);
    ASSERT_EQ(topo.numCores(), 6);
    EXPECT_TRUE(topo.hasCores());

    // Full partition into 2x2 cores, ids laid out core-major.
    for (int c = 0; c < 6; ++c) {
        const Core& core = topo.core(c);
        EXPECT_EQ(core.capacity(), 4);
        for (int q : core.qubits)
            EXPECT_EQ(topo.coreOf(q), c);
        EXPECT_FALSE(core.comm_qubits.empty());
    }

    // 2x3 core grid: 2*2 horizontal + 1*3 vertical links.
    EXPECT_EQ(topo.teleportEdges().size(), 7u);
    for (const TeleportEdge& edge : topo.teleportEdges()) {
        EXPECT_EQ(topo.coreOf(edge.comm_a), edge.core_a);
        EXPECT_EQ(topo.coreOf(edge.comm_b), edge.core_b);
        // Comm endpoints are never coupled: crossing needs the link.
        EXPECT_FALSE(topo.adjacent(edge.comm_a, edge.comm_b));
    }

    // The coupling graph is disconnected across cores by design, yet
    // the device is connected once teleport links count.
    EXPECT_FALSE(topo.connected());
    EXPECT_TRUE(topo.connectedWithTeleport());
}

TEST(GridOfGrids, DistanceMatrices)
{
    Topology topo = Topology::gridOfGrids(2, 3, 2, 2);
    // Core BFS distance over the 2x3 core grid.
    EXPECT_EQ(topo.coreDistance(0, 0), 0);
    EXPECT_EQ(topo.coreDistance(0, 1), 1);
    EXPECT_EQ(topo.coreDistance(0, 5), 3); // (0,0) -> (1,2)
    EXPECT_EQ(topo.coreDistance(3, 2), 3); // (1,0) -> (0,2)

    // Intra-core distances stay inside the core...
    const Core& core = topo.core(0);
    EXPECT_EQ(topo.intraCoreDistance(core.qubits[0], core.qubits[0]), 0);
    EXPECT_GT(topo.intraCoreDistance(core.qubits[0], core.qubits[3]), 0);
    // ...and cross-core pairs are unreachable without a link.
    EXPECT_EQ(
        topo.intraCoreDistance(core.qubits[0], topo.core(1).qubits[0]),
        -1);
}

TEST(GridOfGrids, CommQubitReservationIsExclusive)
{
    Topology topo = Topology::gridOfGrids(2, 2, 2, 3);
    CommQubitLedger ledger(topo);
    int comm = topo.teleportEdges().front().comm_a;
    int plain = -1;
    for (int q : topo.core(topo.coreOf(comm)).qubits)
        if (!ledger.isCommQubit(q)) {
            plain = q;
            break;
        }
    ASSERT_GE(plain, 0);

    EXPECT_FALSE(ledger.reserve(plain)); // not a comm qubit
    EXPECT_TRUE(ledger.reserve(comm));
    EXPECT_TRUE(ledger.held(comm));
    EXPECT_FALSE(ledger.reserve(comm)); // second reservation refused
    ledger.release(comm);
    EXPECT_FALSE(ledger.held(comm));
    EXPECT_TRUE(ledger.reserve(comm)); // reusable after release
}

TEST(ChipletDevice, CalibratedLikeAMonolithicDevice)
{
    Device d = chiplet2x2();
    EXPECT_EQ(d.numQubits(), 24);
    EXPECT_EQ(d.topology().numCores(), 4);
    for (auto [a, b] : d.topology().edges()) {
        double fid = bestEdgeFidelity(
            d, a, b, std::vector<std::string>{"S3"});
        EXPECT_GT(fid, 0.9);
        EXPECT_LT(fid, 1.0);
    }
}

// ------------------------------------------------- router bit-identity

TEST(TeleportRouter, BitIdenticalToSabreOnSingleCoreDevices)
{
    struct Case
    {
        Circuit circuit;
        Topology coupling;
    };
    Rng rng(11);
    std::vector<Case> cases;
    cases.push_back({makeQftCircuit(8), Topology::line(8)});
    cases.push_back({makeQftCircuit(9), Topology::grid(3, 3)});
    cases.push_back(
        {makeQuantumVolumeCircuit(12, rng), Topology::grid(3, 4)});

    for (size_t i = 0; i < cases.size(); ++i) {
        SCOPED_TRACE("case " + std::to_string(i));
        Schedule schedule(cases[i].circuit);
        RoutedCircuit sabre = SabreRouter().route(
            cases[i].circuit, cases[i].coupling, schedule);
        RoutedCircuit tele = TeleportRouter().route(
            cases[i].circuit, cases[i].coupling, schedule);
        expectIdenticalRouted(sabre, tele);
        EXPECT_EQ(tele.teleports_inserted, 0);
        EXPECT_EQ(tele.epr_attempts, 0.0);
    }
}

TEST(TeleportRouter, RegisteredInTheStrategyRegistry)
{
    auto names = routingStrategyNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "telesabre"),
              names.end());
    EXPECT_EQ(makeRoutingStrategy("telesabre")->name(), "telesabre");
}

// ----------------------------------------------- capacity-aware layout

TEST(ChipletMapping, NarrowCircuitStaysInsideOneCore)
{
    Device d = chiplet2x2();
    std::vector<int> physical =
        chooseMapping(d, 4, isa::singleTypeSet(3));
    ASSERT_EQ(physical.size(), 4u);
    int core = d.topology().coreOf(physical[0]);
    for (int q : physical)
        EXPECT_EQ(d.topology().coreOf(q), core);
}

TEST(ChipletMapping, WideCircuitSpansCoresThroughCommQubits)
{
    Device d = chiplet2x2();
    const Topology& topo = d.topology();
    std::vector<int> physical =
        chooseMapping(d, 10, isa::singleTypeSet(3));
    ASSERT_EQ(physical.size(), 10u);
    std::set<int> unique(physical.begin(), physical.end());
    EXPECT_EQ(unique.size(), 10u);

    std::set<int> cores;
    for (int q : physical)
        cores.insert(topo.coreOf(q));
    EXPECT_GE(cores.size(), 2u); // wider than one 6-qubit core

    // Every selected core holds at least one comm qubit, so the
    // routed circuit can actually reach the rest of the selection.
    CommQubitLedger ledger(topo);
    for (int c : cores) {
        bool has_comm = false;
        for (int q : physical)
            if (topo.coreOf(q) == c && ledger.isCommQubit(q))
                has_comm = true;
        EXPECT_TRUE(has_comm) << "core " << c << " has no comm qubit";
    }
}

TEST(ChipletPlanner, WideCircuitsAdmitOnlyToChipletShards)
{
    DeviceFleet fleet(fastCompile());
    size_t mono = fleet.addDevice(lineDevice("mono", 6, 0.995));
    size_t chip = fleet.addDevice(chiplet2x2());

    GateSet set = isa::singleTypeSet(3);
    std::vector<Circuit> apps;
    apps.push_back(makeQftCircuit(10)); // wider than the 6-qubit line
    apps.push_back(makeQftCircuit(4));  // fits anywhere

    ShardPlan plan = planShardAssignments(apps, fleet, set);
    EXPECT_EQ(plan.assignments[0].shard, static_cast<int>(chip));
    EXPECT_GE(plan.assignments[1].shard, 0);
    (void)mono;

    // Nothing fits: wider than the whole chiplet device.
    std::vector<Circuit> too_wide;
    too_wide.push_back(makeQftCircuit(25));
    EXPECT_ANY_THROW(planShardAssignments(too_wide, fleet, set));
}

// ------------------------------------------------- end-to-end compile

TEST(ChipletPipeline, TeleportsCrossCoresAndPreserveTheRegister)
{
    Device d = chiplet2x2();
    const Topology& topo = d.topology();
    GateSet set = isa::singleTypeSet(3);
    ProfileCache cache;
    CompileOptions options = fastCompile();
    options.routing = "telesabre";

    CompileResult result =
        compileCircuit(makeQftCircuit(10), d, set, cache, options);
    EXPECT_GT(result.teleports_inserted, 0);
    EXPECT_GT(result.epr_attempts, 0.0);
    EXPECT_GT(result.estimated_fidelity, 0.0);
    EXPECT_LT(result.estimated_fidelity, 1.0);
    EXPECT_GT(result.type_usage.count("TELEPORT"), 0u);

    // The final layout is a register bijection (teleports exchange
    // occupants; they never leak a logical qubit).
    std::set<int> positions(result.final_positions.begin(),
                            result.final_positions.end());
    EXPECT_EQ(positions.size(), result.final_positions.size());

    // Every 2Q op is physically executable: coupled within a core, or
    // a TELEPORT over a designated comm pair.
    static const LabelId teleport_label = internLabel("TELEPORT");
    for (const auto& op : result.circuit.ops()) {
        if (!op.isTwoQubit())
            continue;
        int a = result.physical[static_cast<size_t>(op.qubits()[0])];
        int b = result.physical[static_cast<size_t>(op.qubits()[1])];
        if (op.labelId() == teleport_label) {
            bool on_link = false;
            for (const TeleportEdge& edge : topo.teleportEdges())
                if ((edge.comm_a == a && edge.comm_b == b) ||
                    (edge.comm_a == b && edge.comm_b == a))
                    on_link = true;
            EXPECT_TRUE(on_link)
                << "TELEPORT on non-link pair " << a << "," << b;
        } else {
            EXPECT_TRUE(topo.adjacent(a, b))
                << "2Q op on uncoupled pair " << a << "," << b;
        }
    }

    // Multi-core couplings force telesabre even when the options ask
    // for a monolithic router.
    CompileOptions greedy = fastCompile();
    greedy.routing = "greedy";
    CompileResult forced =
        compileCircuit(makeQftCircuit(10), d, set, cache, greedy);
    EXPECT_GT(forced.teleports_inserted, 0);
}

TEST(ChipletPipeline, KnobOffSwapOnlyLinksCostMoreFidelity)
{
    Device d = chiplet2x2();
    GateSet set = isa::singleTypeSet(3);
    ProfileCache cache;
    CompileOptions tele = fastCompile();
    tele.routing = "telesabre";
    CompileOptions swap_only = tele;
    swap_only.teleport.use_teleport = false;

    Circuit app = makeQftCircuit(10);
    CompileResult with = compileCircuit(app, d, set, cache, tele);
    CompileResult without =
        compileCircuit(app, d, set, cache, swap_only);
    ASSERT_GT(with.teleports_inserted, 0);
    EXPECT_EQ(without.teleports_inserted, 0);
    // Identical routing decisions, cheaper link crossings.
    EXPECT_EQ(with.circuit.depth(), without.circuit.depth());
    EXPECT_GT(with.estimated_fidelity, without.estimated_fidelity);
    EXPECT_LT(with.epr_attempts, without.epr_attempts);
}

TEST(ChipletPipeline, SingleCoreCompileBitIdenticalToSabre)
{
    Device d = lineDevice("line8", 8, 0.993);
    GateSet set = isa::singleTypeSet(3);
    ProfileCache cache;
    CompileOptions sabre = fastCompile();
    sabre.routing = "sabre";
    CompileOptions tele = fastCompile();
    tele.routing = "telesabre";

    Circuit app = makeQftCircuit(8);
    CompileResult a = compileCircuit(app, d, set, cache, sabre);
    CompileResult b = compileCircuit(app, d, set, cache, tele);
    EXPECT_EQ(a.physical, b.physical);
    EXPECT_EQ(a.final_positions, b.final_positions);
    EXPECT_EQ(a.swaps_inserted, b.swaps_inserted);
    EXPECT_EQ(b.teleports_inserted, 0);
    EXPECT_DOUBLE_EQ(a.estimated_fidelity, b.estimated_fidelity);
    ASSERT_EQ(a.circuit.size(), b.circuit.size());
    for (size_t i = 0; i < a.circuit.size(); ++i) {
        ConstOpRef x = a.circuit.ops()[i];
        ConstOpRef y = b.circuit.ops()[i];
        EXPECT_EQ(x.qubits(), y.qubits());
        EXPECT_EQ(x.labelId(), y.labelId());
        EXPECT_EQ(x.unitary().maxAbsDiff(y.unitary()), 0.0);
    }
}

// --------------------------------------------------- service plumbing

TEST(ChipletService, PerShardInFlightCapStillCompletesEverything)
{
    GateSet set = isa::singleTypeSet(3);
    std::vector<Circuit> apps;
    for (int i = 0; i < 6; ++i)
        apps.push_back(makeQftCircuit(4));

    auto run = [&](size_t cap) {
        DeviceFleet fleet(fastCompile());
        fleet.addDevice(lineDevice("alpha", 6, 0.995));
        fleet.addDevice(lineDevice("beta", 6, 0.990));
        CompileServiceOptions options;
        options.workers = 3;
        options.planner.max_in_flight_per_shard = cap;
        CompileService service(fleet, set, options);
        CompileRequest request;
        request.circuits = apps;
        CompileJob job = service.submit(std::move(request));
        EXPECT_EQ(job.wait(), JobStatus::Done);
        return job.takeResults();
    };

    std::vector<CompileResult> capped = run(1);
    std::vector<CompileResult> uncapped = run(0);
    ASSERT_EQ(capped.size(), apps.size());
    ASSERT_EQ(uncapped.size(), apps.size());
    // The cap throttles dispatch, never results.
    for (size_t i = 0; i < apps.size(); ++i) {
        EXPECT_EQ(capped[i].circuit.size(), uncapped[i].circuit.size());
        EXPECT_DOUBLE_EQ(capped[i].estimated_fidelity,
                         uncapped[i].estimated_fidelity);
    }
}

TEST(ChipletService, TelemetrySurfacesCostModelPredictions)
{
    GateSet set = isa::singleTypeSet(3);
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(lineDevice("alpha", 6, 0.995));

    CompileServiceOptions options;
    options.planner.use_cost_model = true;
    options.planner.cost_model_min_samples = 4;
    CompileService service(fleet, set, options);

    for (int i = 0; i < 6; ++i) {
        CompileRequest request;
        request.circuits.push_back(makeQftCircuit(4));
        EXPECT_EQ(service.submit(std::move(request)).wait(),
                  JobStatus::Done);
    }

    std::vector<PassMetric> telemetry = service.shardTelemetry();
    ASSERT_EQ(telemetry.size(), 1u);
    const auto& counters = telemetry[0].counters;
    EXPECT_GT(counters.count("predicted_compile_ms"), 0u);
    EXPECT_GT(counters.count("predicted_hit_ratio"), 0u);
    EXPECT_GT(counters.count("predicted_translation_ms"), 0u);
    EXPECT_GT(counters.at("predicted_compile_ms"), 0.0);
    EXPECT_EQ(counters.at("teleports_inserted"), 0.0);
}

// ------------------------------------------------------ trace linting

TEST(ChipletTrace, TeleportEventsPassTraceLint)
{
    GateSet set = isa::singleTypeSet(3);
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(chiplet2x2(), "chip");

    EventStream stream;
    EventRecorder recorder(stream, 1.0);
    {
        CompileServiceOptions options;
        options.workers = 2;
        options.events = &stream;
        CompileService service(fleet, set, options);
        CompileRequest request;
        request.circuits.push_back(makeQftCircuit(10));
        CompileJob job = service.submit(std::move(request));
        ASSERT_EQ(job.wait(), JobStatus::Done);
        EXPECT_GT(job.stats().teleports_inserted, 0);
        service.shutdown();
    }
    recorder.stop();

    bool saw_teleport = false;
    for (const ServiceEvent& event : recorder.events())
        if (event.type == ServiceEventType::Teleport) {
            saw_teleport = true;
            EXPECT_GT(event.a, 0.0); // teleports
            EXPECT_GT(event.b, 0.0); // epr attempts
            EXPECT_EQ(event.shard, 0);
        }
    EXPECT_TRUE(saw_teleport);

    TraceExportOptions trace_options;
    trace_options.shard_names = {"chip"};
    trace_options.pass_names = stream.passNames();
    std::string json =
        chromeTraceJson(recorder.events(), trace_options);
    EXPECT_NE(json.find("\"teleport\""), std::string::npos);

    std::string trace_path = "test_chiplet_trace.json";
    {
        std::ofstream out(trace_path);
        ASSERT_TRUE(out.good());
        out << json;
    }
    // scripts/ lives next to tests/ in the source tree.
    std::string source_dir = __FILE__;
    source_dir = source_dir.substr(0, source_dir.find_last_of('/'));
    std::string lint =
        source_dir + "/../scripts/trace_lint.py";
    if (std::system("python3 --version > /dev/null 2>&1") != 0)
        GTEST_SKIP() << "python3 unavailable; skipping lint run";
    std::string command = "python3 " + lint + " " + trace_path;
    EXPECT_EQ(std::system(command.c_str()), 0)
        << "trace_lint.py rejected the teleport trace";
}

} // namespace
} // namespace qiset
