// Instruction-set definition tests (Tables I and II).

#include <gtest/gtest.h>

#include "common/error.h"
#include "isa/gate_set.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

TEST(Isa, BaselineTypeUnitaries)
{
    EXPECT_LT(isa::s1().unitary().maxAbsDiff(sycamore()), 1e-12);
    EXPECT_LT(isa::s2().unitary().maxAbsDiff(sqrtIswap()), 1e-12);
    EXPECT_LT(isa::s3().unitary().maxAbsDiff(cz()), 1e-12);
    EXPECT_LT(isa::s4().unitary().maxAbsDiff(iswap()), 1e-12);
    EXPECT_LT(isa::s5().unitary().maxAbsDiff(fsim(kPi / 3, 0)), 1e-12);
    EXPECT_LT(isa::s6().unitary().maxAbsDiff(fsim(3 * kPi / 8, 0)),
              1e-12);
    EXPECT_LT(isa::s7().unitary().maxAbsDiff(fsim(kPi / 6, kPi)), 1e-12);
    EXPECT_LT(isa::swapType().unitary().maxAbsDiff(swap()), 1e-12);
}

TEST(Isa, AllTypesAreUnitary)
{
    for (const auto& type : isa::baselineTypes())
        EXPECT_TRUE(type.unitary().isUnitary(1e-12)) << type.name;
}

TEST(Isa, SingleTypeSets)
{
    for (int i = 1; i <= 7; ++i) {
        GateSet set = isa::singleTypeSet(i);
        EXPECT_EQ(set.types.size(), 1u);
        EXPECT_EQ(set.name, "S" + std::to_string(i));
        EXPECT_FALSE(set.isContinuous());
        EXPECT_EQ(set.calibrationTypeCount(), 1);
    }
}

TEST(Isa, GoogleSetSizesMatchTableII)
{
    // G1 = {S1,S2}, ..., G6 = {S1..S7}, G7 = G6 + SWAP.
    EXPECT_EQ(isa::googleSet(1).types.size(), 2u);
    EXPECT_EQ(isa::googleSet(2).types.size(), 3u);
    EXPECT_EQ(isa::googleSet(6).types.size(), 7u);
    EXPECT_EQ(isa::googleSet(7).types.size(), 8u);
    EXPECT_TRUE(isa::googleSet(7).hasType("SWAP"));
    EXPECT_FALSE(isa::googleSet(6).hasType("SWAP"));
    EXPECT_TRUE(isa::googleSet(3).hasType("S4"));
    EXPECT_FALSE(isa::googleSet(3).hasType("S5"));
}

TEST(Isa, RigettiSetsMatchTableII)
{
    GateSet r1 = isa::rigettiSet(1);
    EXPECT_EQ(r1.types.size(), 2u);
    EXPECT_TRUE(r1.hasType("S3"));
    EXPECT_TRUE(r1.hasType("S4"));

    GateSet r5 = isa::rigettiSet(5);
    EXPECT_EQ(r5.types.size(), 6u);
    EXPECT_TRUE(r5.hasType("SWAP"));
    // R-sets never contain SYC (S1): it is not an XY-family member.
    for (int i = 1; i <= 5; ++i)
        EXPECT_FALSE(isa::rigettiSet(i).hasType("S1"));
}

TEST(Isa, ContinuousSets)
{
    GateSet xy = isa::fullXy();
    EXPECT_TRUE(xy.isContinuous());
    EXPECT_EQ(xy.continuous, ContinuousFamily::FullXy);
    EXPECT_TRUE(xy.hasType("S3")); // CZ stays available

    GateSet fsim_set = isa::fullFsim();
    EXPECT_TRUE(fsim_set.isContinuous());
    EXPECT_EQ(fsim_set.calibrationTypeCount(), 361);
}

TEST(Isa, RigettiTypesAreXyFamilyMembers)
{
    // All R-set types except CZ and SWAP have phi == 0 (XY family).
    for (int i = 1; i <= 5; ++i) {
        for (const auto& type : isa::rigettiSet(i).types) {
            if (type.name == "S3" || type.is_swap)
                continue;
            EXPECT_NEAR(type.phi, 0.0, 1e-12) << type.name;
        }
    }
}

TEST(Isa, GoogleSetsAreNested)
{
    // Gi is a strict subset of G(i+1) (Table II construction).
    for (int i = 1; i < 7; ++i) {
        GateSet smaller = isa::googleSet(i);
        GateSet larger = isa::googleSet(i + 1);
        EXPECT_EQ(larger.types.size(), smaller.types.size() + 1);
        for (const auto& type : smaller.types)
            EXPECT_TRUE(larger.hasType(type.name)) << "G" << i;
    }
}

TEST(Isa, CphaseExtensionSet)
{
    GateSet set = isa::fullCphase();
    EXPECT_EQ(set.continuous, ContinuousFamily::FullCphase);
    EXPECT_EQ(set.calibrationTypeCount(), 19);
    EXPECT_TRUE(set.hasType("S4"));
}

TEST(Isa, InvalidIndicesThrow)
{
    EXPECT_THROW(isa::singleTypeSet(0), FatalError);
    EXPECT_THROW(isa::singleTypeSet(8), FatalError);
    EXPECT_THROW(isa::googleSet(8), FatalError);
    EXPECT_THROW(isa::rigettiSet(6), FatalError);
}

} // namespace
} // namespace qiset
