// ASCII circuit renderer tests.

#include <gtest/gtest.h>

#include "circuit/draw.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

TEST(Draw, RendersLabelsAndWires)
{
    Circuit c(2);
    c.add1q(0, hadamard(), "H");
    c.add2q(0, 1, cz(), "CZ");
    std::string art = drawCircuit(c);
    EXPECT_NE(art.find("q0:"), std::string::npos);
    EXPECT_NE(art.find("q1:"), std::string::npos);
    EXPECT_NE(art.find("H"), std::string::npos);
    EXPECT_NE(art.find("CZ"), std::string::npos);
}

TEST(Draw, TwoQubitConnectorPresent)
{
    Circuit c(3);
    c.add2q(0, 2, iswap(), "ISWAP");
    std::string art = drawCircuit(c);
    // The op spans qubits 0-2: connector bars on the rows between.
    EXPECT_NE(art.find('|'), std::string::npos);
    EXPECT_NE(art.find('*'), std::string::npos);
}

TEST(Draw, ParallelOpsShareAColumn)
{
    Circuit c(4);
    c.add2q(0, 1, cz(), "CZ");
    c.add2q(2, 3, cz(), "CZ");
    std::string one_moment = drawCircuit(c);

    Circuit d(4);
    d.add2q(0, 1, cz(), "CZ");
    d.add2q(1, 2, cz(), "CZ");
    std::string two_moments = drawCircuit(d);

    // Sequential version renders wider wires.
    auto line_len = [](const std::string& art) {
        return art.find('\n');
    };
    EXPECT_LT(line_len(one_moment), line_len(two_moments));
}

TEST(Draw, TruncationAddsEllipsis)
{
    Circuit c(1);
    for (int i = 0; i < 10; ++i)
        c.add1q(0, hadamard(), "H");
    std::string art = drawCircuit(c, 3);
    EXPECT_NE(art.find("..."), std::string::npos);
    std::string full = drawCircuit(c);
    EXPECT_EQ(full.find("..."), std::string::npos);
    EXPECT_GT(full.size(), art.size());
}

TEST(Draw, EveryQubitGetsARow)
{
    Circuit c(5);
    c.add1q(3, pauliX(), "X");
    std::string art = drawCircuit(c);
    for (int q = 0; q < 5; ++q)
        EXPECT_NE(art.find("q" + std::to_string(q) + ":"),
                  std::string::npos);
}

} // namespace
} // namespace qiset
