// Circuit IR tests: construction, counting, depth, scheduling and the
// full-unitary builder.

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "common/error.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

TEST(Circuit, CountsGatesByArity)
{
    Circuit c(3);
    c.add1q(0, hadamard(), "H");
    c.add2q(0, 1, cz(), "CZ");
    c.add2q(1, 2, iswap(), "iSWAP");
    EXPECT_EQ(c.oneQubitGateCount(), 1);
    EXPECT_EQ(c.twoQubitGateCount(), 2);
    EXPECT_EQ(c.size(), 3u);
}

TEST(Circuit, CountLabel)
{
    Circuit c(2);
    c.add2q(0, 1, swap(), "SWAP");
    c.add2q(0, 1, swap(), "SWAP");
    c.add2q(0, 1, cz(), "CZ");
    EXPECT_EQ(c.countLabel("SWAP"), 2);
    EXPECT_EQ(c.countLabel("CZ"), 1);
    EXPECT_EQ(c.countLabel("nope"), 0);
}

TEST(Circuit, RejectsBadQubits)
{
    Circuit c(2);
    EXPECT_THROW(c.add1q(2, hadamard()), FatalError);
    EXPECT_THROW(c.add2q(0, 0, cz()), FatalError);
    EXPECT_THROW(c.add2q(0, 5, cz()), FatalError);
}

TEST(Circuit, RejectsWrongShapes)
{
    Circuit c(2);
    EXPECT_THROW(c.add1q(0, cz()), FatalError);
    EXPECT_THROW(c.add2q(0, 1, hadamard()), FatalError);
}

TEST(Circuit, DepthTracksParallelism)
{
    Circuit c(4);
    c.add1q(0, hadamard());
    c.add1q(1, hadamard());
    EXPECT_EQ(c.depth(), 1); // parallel 1Q layer
    c.add2q(0, 1, cz());
    EXPECT_EQ(c.depth(), 2);
    c.add2q(2, 3, cz());
    EXPECT_EQ(c.depth(), 2); // disjoint pair packs into moment 2
    c.add2q(1, 2, cz());
    EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, ScheduledDuration)
{
    Circuit c(2);
    Operation a;
    a.qubits = {0};
    a.unitary = hadamard();
    a.duration_ns = 25.0;
    c.add(a);
    Operation b;
    b.qubits = {0, 1};
    b.unitary = cz();
    b.duration_ns = 100.0;
    c.add(b);
    EXPECT_NEAR(c.scheduledDurationNs(), 125.0, 1e-9);
}

TEST(Circuit, AppendConcatenates)
{
    Circuit a(2), b(2);
    a.add1q(0, hadamard());
    b.add2q(0, 1, cz());
    a.append(b);
    EXPECT_EQ(a.size(), 2u);
}

TEST(Circuit, UnitaryOfBellPreparation)
{
    Circuit c(2);
    c.add1q(0, hadamard(), "H");
    c.add2q(0, 1, cnot(), "CNOT");
    Matrix u = c.unitary();
    // First column = state (|00> + |11>)/sqrt(2).
    double s = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(u(0, 0) - cplx(s)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u(3, 0) - cplx(s)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u(1, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u(2, 0)), 0.0, 1e-12);
}

TEST(Circuit, EmbedUnitaryMatchesKroneckerForAdjacentPair)
{
    // 2Q gate on qubits (0, 1) of a 2-qubit register is the matrix
    // itself.
    Matrix g = iswap();
    Matrix full = embedUnitary(g, {0, 1}, 2);
    EXPECT_LT(full.maxAbsDiff(g), 1e-12);
}

TEST(Circuit, EmbedUnitaryHandlesReversedQubitOrder)
{
    // Applying CNOT on (1, 0) must equal SWAP * CNOT * SWAP on (0, 1).
    Matrix reversed = embedUnitary(cnot(), {1, 0}, 2);
    Matrix expected = swap() * cnot() * swap();
    EXPECT_LT(reversed.maxAbsDiff(expected), 1e-12);
}

TEST(Circuit, EmbedSingleQubitOnSecondQubit)
{
    Matrix full = embedUnitary(pauliX(), {1}, 2);
    Matrix expected = identity1q().kron(pauliX());
    EXPECT_LT(full.maxAbsDiff(expected), 1e-12);
}

TEST(Circuit, UnitaryIsUnitaryForRandomCircuit)
{
    Circuit c(3);
    c.add1q(0, hadamard());
    c.add2q(0, 2, iswap());
    c.add1q(1, tGate());
    c.add2q(2, 1, fsim(0.4, 1.1));
    EXPECT_TRUE(c.unitary().isUnitary(1e-10));
}

TEST(Circuit, ToStringListsOps)
{
    Circuit c(2);
    c.add2q(0, 1, cz(), "CZ");
    std::string s = c.toString();
    EXPECT_NE(s.find("CZ q0, q1"), std::string::npos);
}

} // namespace
} // namespace qiset
