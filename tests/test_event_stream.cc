// EventStream mechanics: FIFO order through the ring, overflow
// accounting (drop-on-full, never block), concurrent publishers vs a
// live drainer losing nothing, pass-name interning, and the
// Chrome-trace exporter's span balancing (including dangling-span
// close-out on truncated logs).

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/event_stream.h"
#include "metrics/trace_export.h"

namespace qiset {
namespace {

ServiceEvent
packet(ServiceEventType type, uint64_t job, int32_t circuit = -1,
       int32_t shard = -1, double a = 0.0, double b = 0.0)
{
    ServiceEvent event;
    event.type = type;
    event.job = job;
    event.circuit = circuit;
    event.shard = shard;
    event.a = a;
    event.b = b;
    return event;
}

// ------------------------------------------------------------- the ring

TEST(EventStream, PublishDrainKeepsFifoOrder)
{
    EventStream stream(64);
    for (uint64_t i = 0; i < 40; ++i)
        ASSERT_TRUE(
            stream.publishNow(packet(ServiceEventType::Submit, i)));

    std::vector<ServiceEvent> out;
    EXPECT_EQ(stream.drain(out), 40u);
    ASSERT_EQ(out.size(), 40u);
    for (uint64_t i = 0; i < 40; ++i)
        EXPECT_EQ(out[i].job, i);
    EXPECT_EQ(stream.published(), 40u);
    EXPECT_EQ(stream.dropped(), 0u);
}

TEST(EventStream, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(EventStream(1).capacity(), 8u);
    EXPECT_EQ(EventStream(8).capacity(), 8u);
    EXPECT_EQ(EventStream(9).capacity(), 16u);
    EXPECT_EQ(EventStream(1000).capacity(), 1024u);
}

TEST(EventStream, OverflowDropsAndCounts)
{
    EventStream stream(16);
    const uint64_t total = 100;
    uint64_t accepted = 0;
    for (uint64_t i = 0; i < total; ++i)
        if (stream.publishNow(packet(ServiceEventType::Submit, i)))
            ++accepted;

    // A full ring refuses exactly the excess; nothing blocks.
    EXPECT_EQ(accepted, stream.capacity());
    EXPECT_EQ(stream.published(), stream.capacity());
    EXPECT_EQ(stream.dropped(), total - stream.capacity());

    // The survivors are the earliest packets, still in order.
    std::vector<ServiceEvent> out;
    stream.drain(out);
    ASSERT_EQ(out.size(), stream.capacity());
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].job, i);

    // Drained slots accept new packets again.
    EXPECT_TRUE(stream.publishNow(packet(ServiceEventType::Submit, 7)));
    out.clear();
    EXPECT_EQ(stream.drain(out), 1u);
    EXPECT_EQ(out[0].job, 7u);
}

TEST(EventStream, TimestampsAreMonotonePerPublisher)
{
    EventStream stream(256);
    for (uint64_t i = 0; i < 100; ++i)
        stream.publishNow(packet(ServiceEventType::Submit, i));
    std::vector<ServiceEvent> out;
    stream.drain(out);
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 1; i < out.size(); ++i)
        EXPECT_GE(out[i].ns, out[i - 1].ns);
}

TEST(EventStream, ConcurrentPublishersLoseNothingWithLiveDrainer)
{
    // Ring sized well under the total so the test only passes when
    // the drainer's freed slots are actually reused.
    EventStream stream(256);
    const int writers = 4;
    const uint64_t per_writer = 5000;

    std::vector<ServiceEvent> drained;
    std::atomic<bool> done{false};
    std::thread drainer([&] {
        while (!done.load(std::memory_order_acquire))
            stream.drain(drained);
        stream.drain(drained);
    });

    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w)
        threads.emplace_back([&, w] {
            for (uint64_t i = 0; i < per_writer; ++i) {
                // Spin until accepted: total throughput then proves no
                // packet is lost or duplicated under contention.
                while (!stream.publishNow(packet(
                    ServiceEventType::Submit,
                    static_cast<uint64_t>(w) * per_writer + i))) {
                }
            }
        });
    for (auto& t : threads)
        t.join();
    done.store(true, std::memory_order_release);
    drainer.join();

    ASSERT_EQ(drained.size(), writers * per_writer);
    // Every id exactly once...
    std::vector<uint64_t> ids;
    ids.reserve(drained.size());
    for (const ServiceEvent& event : drained)
        ids.push_back(event.job);
    std::sort(ids.begin(), ids.end());
    for (uint64_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], i);
    // ...and each writer's packets in its publish order.
    std::vector<uint64_t> last(writers, 0);
    for (const ServiceEvent& event : drained) {
        uint64_t w = event.job / per_writer;
        uint64_t seq = event.job % per_writer;
        ASSERT_LT(w, static_cast<uint64_t>(writers));
        if (seq > 0) {
            EXPECT_GE(seq, last[w]);
        }
        last[w] = seq;
    }
}

TEST(EventStream, PassInterningIsStable)
{
    EventStream stream;
    int32_t mapping = stream.passId("mapping");
    int32_t routing = stream.passId("routing");
    EXPECT_NE(mapping, routing);
    EXPECT_EQ(stream.passId("mapping"), mapping);
    std::vector<std::string> names = stream.passNames();
    ASSERT_GT(names.size(), static_cast<size_t>(routing));
    EXPECT_EQ(names[static_cast<size_t>(mapping)], "mapping");
    EXPECT_EQ(names[static_cast<size_t>(routing)], "routing");
}

TEST(EventStream, RecorderDrainsInBackground)
{
    EventStream stream(1024);
    {
        EventRecorder recorder(stream, 1.0);
        for (uint64_t i = 0; i < 200; ++i)
            stream.publishNow(packet(ServiceEventType::Submit, i));
        recorder.stop();
        EXPECT_EQ(recorder.events().size(), 200u);
        for (size_t i = 0; i < recorder.events().size(); ++i)
            EXPECT_EQ(recorder.events()[i].job, i);
    }
}

// -------------------------------------------------------- trace export

/** Count "ph":"X" occurrences in a rendered trace. */
size_t
countPhase(const std::string& json, const std::string& phase)
{
    std::string needle = "\"ph\":\"" + phase + "\"";
    size_t count = 0;
    for (size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size()))
        ++count;
    return count;
}

std::vector<ServiceEvent>
oneJobLog()
{
    // submit -> admit -> dispatch -> one pass -> cache -> complete.
    EventStream stream(64);
    stream.publishNow(packet(ServiceEventType::Submit, 1, -1, -1, 1.0));
    stream.publishNow(
        packet(ServiceEventType::Admit, 1, 0, 0, 1000.0, 0.99));
    stream.publishNow(packet(ServiceEventType::Dispatch, 1, 0, 0));
    ServiceEvent begin = packet(ServiceEventType::PassBegin, 1, 0, 0);
    begin.pass = 0;
    stream.publishNow(begin);
    ServiceEvent end =
        packet(ServiceEventType::PassComplete, 1, 0, 0, 0.5);
    end.pass = 0;
    stream.publishNow(end);
    stream.publishNow(
        packet(ServiceEventType::CacheStats, 1, 0, 0, 3.0, 1.0));
    stream.publishNow(
        packet(ServiceEventType::Complete, 1, 0, 0, 1.5, 1.0));
    std::vector<ServiceEvent> log;
    stream.drain(log);
    return log;
}

TEST(TraceExport, BalancedSpansAndNames)
{
    TraceExportOptions options;
    options.shard_names = {"alpha"};
    options.pass_names = {"mapping"};
    std::string json = chromeTraceJson(oneJobLog(), options);

    // One job span + one pass span, both closed.
    EXPECT_EQ(countPhase(json, "B"), 2u);
    EXPECT_EQ(countPhase(json, "E"), 2u);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("job 1[0]"), std::string::npos);
    EXPECT_NE(json.find("\"mapping\""), std::string::npos);
    EXPECT_NE(json.find("shard:alpha"), std::string::npos);
    // Submit/admit/cache instants survive as "i" marks.
    EXPECT_GE(countPhase(json, "i"), 3u);
}

TEST(TraceExport, TruncatedLogStillBalances)
{
    std::vector<ServiceEvent> log = oneJobLog();
    // Drop everything after PassBegin: both spans left dangling.
    log.resize(4);
    std::string json = chromeTraceJson(log);
    EXPECT_EQ(countPhase(json, "B"), countPhase(json, "E"));
    EXPECT_EQ(countPhase(json, "B"), 2u);
}

TEST(TraceExport, EmptyLogRendersValidJson)
{
    std::string json = chromeTraceJson({});
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(countPhase(json, "B"), 0u);
}

} // namespace
} // namespace qiset
