// KAK decomposition, Makhlin invariants, Weyl coordinates and minimal
// CZ counts.

#include <gtest/gtest.h>

#include "apps/qv.h"
#include "common/rng.h"
#include "nuop/kak.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

TEST(MagicBasis, IsUnitary)
{
    EXPECT_TRUE(magicBasis().isUnitary(1e-12));
}

TEST(Makhlin, IdentityInvariants)
{
    MakhlinInvariants inv = makhlinInvariants(Matrix::identity(4));
    EXPECT_NEAR(std::abs(inv.g1 - cplx(1.0)), 0.0, 1e-9);
    EXPECT_NEAR(inv.g2, 3.0, 1e-9);
}

TEST(Makhlin, CnotInvariants)
{
    MakhlinInvariants inv = makhlinInvariants(cnot());
    EXPECT_NEAR(std::abs(inv.g1), 0.0, 1e-9);
    EXPECT_NEAR(inv.g2, 1.0, 1e-9);
}

TEST(Makhlin, SwapInvariants)
{
    MakhlinInvariants inv = makhlinInvariants(swap());
    EXPECT_NEAR(std::abs(inv.g1 - cplx(-1.0)), 0.0, 1e-9);
    EXPECT_NEAR(inv.g2, -3.0, 1e-9);
}

TEST(Makhlin, LocalEquivalenceInvariance)
{
    Rng rng(41);
    Matrix u = sycamore();
    Matrix locals =
        u3(1.1, 0.3, 2.2).kron(u3(0.5, 2.9, 1.3));
    Matrix locals2 =
        u3(2.7, 1.9, 0.4).kron(u3(0.2, 0.8, 2.6));
    MakhlinInvariants a = makhlinInvariants(u);
    MakhlinInvariants b = makhlinInvariants(locals * u * locals2);
    EXPECT_NEAR(std::abs(a.g1 - b.g1), 0.0, 1e-8);
    EXPECT_NEAR(a.g2, b.g2, 1e-8);
}

TEST(MinimalCzCount, KnownGates)
{
    EXPECT_EQ(minimalCzCount(Matrix::identity(4)), 0);
    EXPECT_EQ(minimalCzCount(u3(0.3, 1.0, 2.0).kron(u3(1.7, 0.1, 0.9))),
              0);
    EXPECT_EQ(minimalCzCount(cz()), 1);
    EXPECT_EQ(minimalCzCount(cnot()), 1);
    EXPECT_EQ(minimalCzCount(iswap()), 2);
    EXPECT_EQ(minimalCzCount(sqrtIswap()), 2);
    EXPECT_EQ(minimalCzCount(swap()), 3);
}

TEST(MinimalCzCount, GenericSu4NeedsThree)
{
    Rng rng(43);
    for (int trial = 0; trial < 20; ++trial)
        EXPECT_EQ(minimalCzCount(randomSu4(rng)), 3);
}

TEST(MinimalCzCount, ZzInteractionsNeedAtMostTwo)
{
    // ZZ(beta) is in the controlled-phase family: 2 CZs generically,
    // fewer at special angles.
    for (double beta : {0.0303, 0.2, 0.7})
        EXPECT_LE(minimalCzCount(zz(beta)), 2);
}

TEST(WeylCoordinates, KnownGateCoordinates)
{
    const double q = kPi / 4.0;
    WeylCoordinates c = weylCoordinates(cnot());
    EXPECT_NEAR(c.cx, q, 1e-4);
    EXPECT_NEAR(c.cy, 0.0, 1e-4);
    EXPECT_NEAR(std::abs(c.cz), 0.0, 1e-4);

    c = weylCoordinates(iswap());
    EXPECT_NEAR(c.cx, q, 1e-4);
    EXPECT_NEAR(c.cy, q, 1e-4);
    EXPECT_NEAR(std::abs(c.cz), 0.0, 1e-4);

    c = weylCoordinates(swap());
    EXPECT_NEAR(c.cx, q, 1e-4);
    EXPECT_NEAR(c.cy, q, 1e-4);
    EXPECT_NEAR(std::abs(c.cz), q, 1e-4);

    c = weylCoordinates(sqrtIswap());
    EXPECT_NEAR(c.cx, kPi / 8.0, 1e-4);
    EXPECT_NEAR(c.cy, kPi / 8.0, 1e-4);
    EXPECT_NEAR(std::abs(c.cz), 0.0, 1e-4);
}

TEST(WeylCoordinates, CanonicalGateRoundTrip)
{
    WeylCoordinates in{0.5, 0.3, 0.1};
    WeylCoordinates out = weylCoordinates(canonicalGate(in));
    EXPECT_NEAR(out.cx, in.cx, 1e-4);
    EXPECT_NEAR(out.cy, in.cy, 1e-4);
    EXPECT_NEAR(std::abs(out.cz), in.cz, 1e-4);
}

class WeylRoundTripTest : public ::testing::TestWithParam<int>
{
};

TEST_P(WeylRoundTripTest, RandomSu4CoordinatesVerify)
{
    // Property: the extracted chamber point reproduces the unitary's
    // Makhlin invariants, and conjugating by local rotations leaves
    // the coordinates unchanged.
    Rng rng(700 + GetParam());
    Matrix u = randomSu4(rng);
    WeylCoordinates c = weylCoordinates(u);

    const double quarter = kPi / 4.0;
    EXPECT_LE(c.cx, quarter + 1e-9);
    EXPECT_GE(c.cx, c.cy - 1e-9);
    EXPECT_GE(c.cy, std::abs(c.cz) - 1e-9);

    MakhlinInvariants a = makhlinInvariants(u);
    MakhlinInvariants b = makhlinInvariants(canonicalGate(c));
    EXPECT_NEAR(std::abs(a.g1 - b.g1), 0.0, 1e-6);
    EXPECT_NEAR(a.g2, b.g2, 1e-6);

    Matrix locals = u3(0.3, 1.1, 2.4).kron(u3(1.9, 0.2, 0.8));
    WeylCoordinates c2 = weylCoordinates(locals * u);
    EXPECT_NEAR(c2.cx, c.cx, 1e-6);
    EXPECT_NEAR(c2.cy, c.cy, 1e-6);
    EXPECT_NEAR(std::abs(c2.cz), std::abs(c.cz), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeylRoundTripTest,
                         ::testing::Range(0, 12));

TEST(WeylCoordinates, FsimFamilyMembers)
{
    // fSim(theta, 0) is an XY-type interaction: coordinates
    // (theta/2, theta/2, 0) for theta in [0, pi/2].
    for (double theta : {0.2, 0.6, 1.0, kPi / 2}) {
        WeylCoordinates c = weylCoordinates(fsim(theta, 0.0));
        EXPECT_NEAR(c.cx, theta / 2.0, 1e-6) << theta;
        EXPECT_NEAR(c.cy, theta / 2.0, 1e-6) << theta;
        EXPECT_NEAR(std::abs(c.cz), 0.0, 1e-6) << theta;
    }
}

TEST(WeylCoordinates, SwapEquivalentFsim)
{
    // fSim(pi/2, pi) is locally equivalent to SWAP (Section VIII).
    WeylCoordinates c = weylCoordinates(fsim(kPi / 2.0, kPi));
    const double quarter = kPi / 4.0;
    EXPECT_NEAR(c.cx, quarter, 1e-6);
    EXPECT_NEAR(c.cy, quarter, 1e-6);
    EXPECT_NEAR(std::abs(c.cz), quarter, 1e-6);
}

TEST(CanonicalGate, IsUnitary)
{
    EXPECT_TRUE(canonicalGate({0.3, 0.2, 0.1}).isUnitary(1e-12));
    EXPECT_TRUE(canonicalGate({kPi / 4, kPi / 4, kPi / 4})
                    .isUnitary(1e-12));
}

TEST(DecomposeLocal, RecoversTensorFactors)
{
    Matrix a = u3(0.7, 1.9, 0.4);
    Matrix b = u3(2.3, 0.2, 1.1);
    auto [ra, rb] = decomposeLocalUnitary(a.kron(b));
    EXPECT_NEAR(traceFidelity(ra.kron(rb), a.kron(b)), 1.0, 1e-9);
}

class KakReconstructionTest : public ::testing::TestWithParam<int>
{
};

TEST_P(KakReconstructionTest, ReconstructsRandomSu4)
{
    Rng rng(100 + GetParam());
    Matrix u = randomSu4(rng);
    KakDecomposition kak = kakDecompose(u);

    Matrix rebuilt =
        (kak.k1 * kak.canonical * kak.k2) * kak.global_phase;
    EXPECT_NEAR(traceFidelity(rebuilt, u), 1.0, 1e-7);

    // Local factors must be tensor products of single-qubit unitaries.
    auto [a1, b1] = decomposeLocalUnitary(kak.k1);
    EXPECT_NEAR(traceFidelity(a1.kron(b1), kak.k1), 1.0, 1e-7);
    auto [a2, b2] = decomposeLocalUnitary(kak.k2);
    EXPECT_NEAR(traceFidelity(a2.kron(b2), kak.k2), 1.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KakReconstructionTest,
                         ::testing::Range(0, 10));

TEST(Kak, ReconstructsNamedGates)
{
    for (const Matrix& u :
         {cz(), iswap(), sqrtIswap(), sycamore(), swap(), zz(0.4)}) {
        KakDecomposition kak = kakDecompose(u);
        Matrix rebuilt =
            (kak.k1 * kak.canonical * kak.k2) * kak.global_phase;
        EXPECT_NEAR(traceFidelity(rebuilt, u), 1.0, 1e-7);
    }
}

TEST(Kak, InvariantRoundTripThroughReconstruction)
{
    // makhlinInvariants ∘ reconstruction is the identity: rebuilding
    // from the Cartan factors preserves the local-equivalence class.
    Rng rng(61);
    for (int trial = 0; trial < 8; ++trial) {
        Matrix u = randomSu4(rng);
        KakDecomposition kak = kakDecompose(u);
        Matrix rebuilt =
            (kak.k1 * kak.canonical * kak.k2) * kak.global_phase;
        MakhlinInvariants a = makhlinInvariants(u);
        MakhlinInvariants b = makhlinInvariants(rebuilt);
        EXPECT_NEAR(std::abs(a.g1 - b.g1), 0.0, 1e-8);
        EXPECT_NEAR(a.g2, b.g2, 1e-8);
        // The canonical factor alone carries the whole class.
        MakhlinInvariants c = makhlinInvariants(kak.canonical);
        EXPECT_NEAR(std::abs(a.g1 - c.g1), 0.0, 1e-8);
        EXPECT_NEAR(a.g2, c.g2, 1e-8);
    }
}

TEST(Kak, AnalyticTierClassification)
{
    // CZ-class gates are universal for the analytic engine; every
    // other fixed type only serves its own class.
    EXPECT_EQ(analyticTier(cz()), AnalyticTier::Universal);
    EXPECT_EQ(analyticTier(cnot()), AnalyticTier::Universal);
    EXPECT_EQ(analyticTier(iswap()), AnalyticTier::LocalEquivalence);
    EXPECT_EQ(analyticTier(sqrtIswap()), AnalyticTier::LocalEquivalence);
    EXPECT_EQ(analyticTier(sycamore()), AnalyticTier::LocalEquivalence);
    EXPECT_EQ(analyticTier(swap()), AnalyticTier::LocalEquivalence);
}

TEST(CirqBaseline, ModeledCounts)
{
    Rng rng(51);
    Matrix su4 = randomSu4(rng);
    EXPECT_EQ(cirqBaselineGateCount(su4, "CZ"), 3);
    EXPECT_EQ(cirqBaselineGateCount(su4, "SYC"), 6);
    EXPECT_EQ(cirqBaselineGateCount(su4, "iSWAP"), 4);
    EXPECT_EQ(cirqBaselineGateCount(su4, "sqrt_iSWAP"), -1);

    // Controlled-phase targets.
    EXPECT_EQ(cirqBaselineGateCount(zz(0.2), "CZ"), 2);
    EXPECT_EQ(cirqBaselineGateCount(zz(0.2), "SYC"), 2);
    EXPECT_EQ(cirqBaselineGateCount(zz(0.2), "sqrt_iSWAP"), 2);

    // Local target costs nothing.
    EXPECT_EQ(cirqBaselineGateCount(Matrix::identity(4), "SYC"), 0);
}

} // namespace
} // namespace qiset
