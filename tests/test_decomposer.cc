// NuOp decomposer tests: exact layer counts against KAK lower bounds,
// approximation behaviour and noise-aware gate selection.

#include <gtest/gtest.h>

#include "apps/qv.h"
#include "common/rng.h"
#include "nuop/decomposer.h"
#include "nuop/kak.h"
#include "nuop/template_circuit.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

NuOpOptions
fastOptions()
{
    NuOpOptions opts;
    opts.max_layers = 5;
    opts.multistarts = 4;
    opts.exact_threshold = 1.0 - 1e-7;
    return opts;
}

TEST(Decomposer, GenericSu4NeedsThreeCzLayers)
{
    NuOpDecomposer nuop(fastOptions());
    Rng rng(61);
    Matrix target = randomSu4(rng);
    Decomposition d =
        nuop.decomposeExact(target, makeFixedGate("CZ", cz()));
    EXPECT_TRUE(d.meets_threshold);
    EXPECT_EQ(d.layers, 3);
    EXPECT_GE(d.decomposition_fidelity, 1.0 - 1e-6);
}

TEST(Decomposer, GenericSu4WithSqrtIswapNeedsTwoOrThree)
{
    // ~79% of Haar-random SU(4)s are exactly reachable with two
    // sqrt(iSWAP) applications (Huang et al. 2021); the rest need 3.
    NuOpDecomposer nuop(fastOptions());
    Rng rng(62);
    for (int trial = 0; trial < 3; ++trial) {
        Decomposition d = nuop.decomposeExact(
            randomSu4(rng), makeFixedGate("sqiSWAP", sqrtIswap()));
        EXPECT_TRUE(d.meets_threshold);
        EXPECT_GE(d.layers, 2);
        EXPECT_LE(d.layers, 3);
    }
}

TEST(Decomposer, ZzWithCzNeedsTwo)
{
    NuOpDecomposer nuop(fastOptions());
    Decomposition d =
        nuop.decomposeExact(zz(0.0303), makeFixedGate("CZ", cz()));
    EXPECT_TRUE(d.meets_threshold);
    EXPECT_EQ(d.layers, 2);
}

TEST(Decomposer, CzWithCzNeedsOne)
{
    NuOpDecomposer nuop(fastOptions());
    Decomposition d = nuop.decomposeExact(cz(), makeFixedGate("CZ", cz()));
    EXPECT_TRUE(d.meets_threshold);
    EXPECT_EQ(d.layers, 1);
}

TEST(Decomposer, LocalTargetNeedsZero)
{
    NuOpDecomposer nuop(fastOptions());
    Matrix local = u3(0.4, 1.2, 2.8).kron(u3(2.2, 0.7, 1.4));
    Decomposition d =
        nuop.decomposeExact(local, makeFixedGate("CZ", cz()));
    EXPECT_TRUE(d.meets_threshold);
    EXPECT_EQ(d.layers, 0);
}

TEST(Decomposer, SwapWithNativeSwapNeedsOne)
{
    NuOpDecomposer nuop(fastOptions());
    Decomposition d =
        nuop.decomposeExact(swap(), makeFixedGate("SWAP", swap()));
    EXPECT_TRUE(d.meets_threshold);
    EXPECT_EQ(d.layers, 1);
}

TEST(Decomposer, SwapWithFsimHalfPiPiNeedsOne)
{
    // fSim(pi/2, pi) is SWAP-equivalent up to 1Q rotations (Sec VIII).
    NuOpDecomposer nuop(fastOptions());
    Decomposition d = nuop.decomposeExact(
        swap(), makeFixedGate("fSim", fsim(kPi / 2.0, kPi)));
    EXPECT_TRUE(d.meets_threshold);
    EXPECT_EQ(d.layers, 1);
}

TEST(Decomposer, SwapWithCzNeedsThree)
{
    NuOpDecomposer nuop(fastOptions());
    Decomposition d =
        nuop.decomposeExact(swap(), makeFixedGate("CZ", cz()));
    EXPECT_TRUE(d.meets_threshold);
    EXPECT_EQ(d.layers, 3);
}

TEST(Decomposer, ExactLayerCountMatchesKakBoundForCz)
{
    // Property: NuOp's CZ layer count equals the analytic minimum.
    NuOpDecomposer nuop(fastOptions());
    Rng rng(63);
    for (int trial = 0; trial < 5; ++trial) {
        Matrix target = randomSu4(rng);
        Decomposition d =
            nuop.decomposeExact(target, makeFixedGate("CZ", cz()));
        EXPECT_EQ(d.layers, minimalCzCount(target));
    }
}

TEST(Decomposer, DecompositionCircuitReproducesTarget)
{
    NuOpDecomposer nuop(fastOptions());
    Rng rng(64);
    Matrix target = randomSu4(rng);
    HardwareGate gate = makeFixedGate("SYC", sycamore());
    Decomposition d = nuop.decomposeExact(target, gate);
    ASSERT_TRUE(d.meets_threshold);

    TwoQubitTemplate templ(d.layers, gate.unitary);
    Matrix realized = templ.build(d.params);
    EXPECT_NEAR(traceFidelity(realized, target), 1.0, 1e-6);
}

TEST(Decomposer, FullFsimFamilyDecomposesSu4InTwoLayers)
{
    // With free fSim angles, generic SU(4) needs only ~2 layers
    // (the continuous-set optimum quoted for QV in Sec. VIII).
    NuOpOptions opts = fastOptions();
    opts.multistarts = 8;
    NuOpDecomposer nuop(opts);
    Rng rng(65);
    HardwareGate family;
    family.name = "fSim";
    family.family = TemplateFamily::FullFsim;
    Decomposition d = nuop.decomposeExact(randomSu4(rng), family);
    EXPECT_TRUE(d.meets_threshold);
    EXPECT_LE(d.layers, 3);
    EXPECT_GE(d.layers, 2);
}

TEST(Decomposer, FullCphaseImplementsZzInOneLayer)
{
    // The Lacroix CZ(phi) family realizes any controlled-phase-class
    // interaction (every QAOA ZZ term) with a single gate.
    NuOpDecomposer nuop(fastOptions());
    HardwareGate family;
    family.name = "CZt";
    family.family = TemplateFamily::FullCphase;
    for (double beta : {0.1, 0.5, 1.2}) {
        Decomposition d = nuop.decomposeExact(zz(beta), family);
        EXPECT_TRUE(d.meets_threshold) << beta;
        EXPECT_EQ(d.layers, 1) << beta;
    }
}

TEST(Decomposer, FullCphaseStillNeedsThreeForSu4)
{
    // Phase-family gates are CZ-equivalent per layer: generic SU(4)
    // still costs 3 applications (the family helps QAOA, not QV).
    NuOpDecomposer nuop(fastOptions());
    HardwareGate family;
    family.name = "CZt";
    family.family = TemplateFamily::FullCphase;
    Rng rng(68);
    Decomposition d = nuop.decomposeExact(randomSu4(rng), family);
    EXPECT_TRUE(d.meets_threshold);
    EXPECT_EQ(d.layers, 3);
}

TEST(Decomposer, ApproximateNeverWorseOverall)
{
    NuOpOptions opts = fastOptions();
    NuOpDecomposer nuop(opts);
    Rng rng(66);
    Matrix target = randomSu4(rng);
    HardwareGate gate = makeFixedGate("CZ", cz(), 0.95);
    Decomposition exact = nuop.decomposeExact(target, gate);
    Decomposition approx = nuop.decomposeApproximate(target, gate);
    // Eq. 2: the approximate pick maximizes Fd * Fh, so it is at least
    // as good overall as the exact decomposition.
    EXPECT_GE(approx.overallFidelity(),
              exact.overallFidelity() - 1e-9);
}

TEST(Decomposer, ApproximateUsesFewerGatesAtHighError)
{
    NuOpDecomposer nuop(fastOptions());
    Rng rng(67);
    Matrix target = randomSu4(rng);
    // At 95% gate fidelity, dropping from 3 to 2 layers usually pays.
    Decomposition approx = nuop.decomposeApproximate(
        target, makeFixedGate("CZ", cz(), 0.95));
    EXPECT_LE(approx.layers, 3);
    Decomposition near_perfect = nuop.decomposeApproximate(
        target, makeFixedGate("CZ", cz(), 0.99999));
    EXPECT_EQ(near_perfect.layers, 3);
}

TEST(Decomposer, NoiseAwareSelectionPicksBetterGate)
{
    NuOpDecomposer nuop(fastOptions());
    // CZ is poorly calibrated, iSWAP is excellent: for a ZZ target
    // (2 layers either way) the selector must pick iSWAP.
    std::vector<HardwareGate> gates = {
        makeFixedGate("CZ", cz(), 0.86),
        makeFixedGate("iSWAP", iswap(), 0.99),
    };
    Decomposition d = nuop.decomposeBest(zz(0.4), gates);
    EXPECT_EQ(d.gate_name, "iSWAP");
}

TEST(Decomposer, UnavailableGateLosesToCalibratedOne)
{
    NuOpDecomposer nuop(fastOptions());
    std::vector<HardwareGate> gates = {
        makeFixedGate("XY", iswap(), 0.0), // uncalibrated
        makeFixedGate("CZ", cz(), 0.9),
    };
    Decomposition d = nuop.decomposeBest(zz(0.4), gates);
    EXPECT_EQ(d.gate_name, "CZ");
}

class FsimTargetSweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(FsimTargetSweep, AnyFsimTargetNeedsAtMostThreeSycs)
{
    // Property: every member of the fSim family decomposes exactly
    // into <= 3 applications of the SYC gate.
    auto [theta, phi] = GetParam();
    NuOpDecomposer nuop(fastOptions());
    Decomposition d = nuop.decomposeExact(
        fsim(theta, phi), makeFixedGate("SYC", sycamore()));
    EXPECT_TRUE(d.meets_threshold) << theta << "," << phi;
    EXPECT_LE(d.layers, 3) << theta << "," << phi;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FsimTargetSweep,
    ::testing::Values(std::pair{0.0, kPi}, std::pair{kPi / 4, 0.0},
                      std::pair{kPi / 2, kPi / 6},
                      std::pair{kPi / 3, kPi / 2},
                      std::pair{kPi / 6, kPi},
                      std::pair{kPi / 2, kPi}));

class CzCountAgreement : public ::testing::TestWithParam<int>
{
};

TEST_P(CzCountAgreement, NuOpMatchesAnalyticBound)
{
    // Property: NuOp's exact CZ layer count equals the Shende-
    // Bullock-Markov analytic minimum for random SU(4) targets.
    NuOpDecomposer nuop(fastOptions());
    Rng rng(900 + GetParam());
    Matrix target = randomSu4(rng);
    Decomposition d =
        nuop.decomposeExact(target, makeFixedGate("CZ", cz()));
    EXPECT_TRUE(d.meets_threshold);
    EXPECT_EQ(d.layers, minimalCzCount(target));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CzCountAgreement,
                         ::testing::Range(0, 8));

TEST(Decomposer, HardwareFidelityModel)
{
    NuOpOptions opts = fastOptions();
    opts.one_qubit_fidelity = 0.999;
    NuOpDecomposer nuop(opts);
    HardwareGate gate = makeFixedGate("CZ", cz(), 0.95);
    double fh = nuop.hardwareFidelity(gate, 3);
    EXPECT_NEAR(fh, std::pow(0.95, 3) * std::pow(0.999, 8), 1e-12);
}

TEST(Decomposer, MultistartSeedingIsDeterministicPerInputs)
{
    // Decompositions are pure functions of (target, gate, layers,
    // start index): repeated calls — and calls from different
    // decomposer instances, as in parallel batch compilation — must
    // agree bit-for-bit.
    Rng rng(63);
    Matrix target = randomSu4(rng);
    HardwareGate gate = makeFixedGate("CZ", cz());

    NuOpDecomposer a(fastOptions());
    NuOpDecomposer b(fastOptions());
    for (int layers = 1; layers <= 3; ++layers) {
        std::vector<double> params_a, params_b, params_a2;
        double fd_a = a.bestFidelityForLayers(target, gate, layers,
                                              &params_a);
        double fd_b = b.bestFidelityForLayers(target, gate, layers,
                                              &params_b);
        double fd_a2 = a.bestFidelityForLayers(target, gate, layers,
                                               &params_a2);
        EXPECT_EQ(fd_a, fd_b);
        EXPECT_EQ(fd_a, fd_a2);
        EXPECT_EQ(params_a, params_b);
        EXPECT_EQ(params_a, params_a2);
    }
}

TEST(Decomposer, SeedsDifferAcrossTargetsAndStarts)
{
    // Different targets draw different multistart points: the
    // optimized parameters for inexact fits must not coincide (they
    // would if the seed ignored the target matrix).
    NuOpOptions opts = fastOptions();
    opts.multistarts = 1;
    opts.bfgs.max_iterations = 5; // stay far from convergence
    NuOpDecomposer nuop(opts);
    Rng rng(64);
    Matrix t1 = randomSu4(rng);
    Matrix t2 = randomSu4(rng);
    HardwareGate gate = makeFixedGate("CZ", cz());

    std::vector<double> p1, p2;
    nuop.bestFidelityForLayers(t1, gate, 1, &p1);
    nuop.bestFidelityForLayers(t2, gate, 1, &p2);
    ASSERT_EQ(p1.size(), p2.size());
    EXPECT_NE(p1, p2);
}

} // namespace
} // namespace qiset
