// Error-handling helper tests.

#include <gtest/gtest.h>

#include "common/error.h"

namespace qiset {
namespace {

TEST(Error, FatalCarriesMessage)
{
    try {
        fatal("bad value: ", 42, " in ", "context");
        FAIL() << "fatal() must throw";
    } catch (const FatalError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("fatal:"), std::string::npos);
        EXPECT_NE(what.find("bad value: 42 in context"),
                  std::string::npos);
    }
}

TEST(Error, PanicCarriesMessage)
{
    try {
        panic("invariant ", 3.5);
        FAIL() << "panic() must throw";
    } catch (const PanicError& e) {
        EXPECT_NE(std::string(e.what()).find("invariant 3.5"),
                  std::string::npos);
    }
}

TEST(Error, RequireMacroPassesAndFails)
{
    EXPECT_NO_THROW(QISET_REQUIRE(1 + 1 == 2, "fine"));
    EXPECT_THROW(QISET_REQUIRE(false, "nope"), FatalError);
}

TEST(Error, AssertMacroPassesAndFails)
{
    EXPECT_NO_THROW(QISET_ASSERT(true, "fine"));
    EXPECT_THROW(QISET_ASSERT(false, "bug"), PanicError);
}

TEST(Error, FatalIsNotPanic)
{
    // The two error classes are distinct so callers can distinguish
    // user errors from library bugs.
    EXPECT_THROW(
        {
            try {
                fatal("user error");
            } catch (const PanicError&) {
                FAIL() << "FatalError must not be a PanicError";
            }
            throw FatalError("x");
        },
        FatalError);
}

} // namespace
} // namespace qiset
