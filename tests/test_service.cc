// CompileService semantics: FIFO-within-priority dispatch ordering,
// cancel() before and after dispatch, deadline/backlog admission
// control, bit-identity of service results with compileCircuit, job
// telemetry (queue wait, shard ids, cache hit ratio) flowing through
// accumulatePassMetrics, cache persistence across service restarts,
// and concurrent submitters hammering one service (the ASan/UBSan CI
// leg runs this file too, so data races fail loudly).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "compiler/service.h"

namespace qiset {
namespace {

CompileOptions
fastCompile()
{
    CompileOptions opts;
    opts.nuop.max_layers = 4;
    opts.nuop.multistarts = 3;
    opts.nuop.exact_threshold = 1.0 - 1e-6;
    return opts;
}

Device
lineDevice(const std::string& name, int n, double fid)
{
    Device d(name, Topology::line(n));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", fid);
        d.setEdgeFidelity(a, b, "S4", fid - 0.005);
    }
    for (int q = 0; q < n; ++q)
        d.setOneQubitError(q, 0.0005);
    return d;
}

DeviceFleet
twoShardFleet()
{
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(lineDevice("alpha", 4, 0.995));
    fleet.addDevice(lineDevice("beta", 4, 0.990));
    return fleet;
}

std::vector<Circuit>
makeWorkload(int circuits, int qubits, uint64_t seed = 501)
{
    std::vector<Circuit> apps;
    Rng rng(seed);
    for (int i = 0; i < circuits; ++i)
        apps.push_back(i % 2 == 0 ? makeQftCircuit(qubits)
                                  : makeRandomQaoaCircuit(qubits, rng));
    return apps;
}

CompileRequest
requestFor(std::vector<Circuit> circuits, int priority = 0)
{
    CompileRequest request;
    request.circuits = std::move(circuits);
    request.priority = priority;
    return request;
}

void
expectIdentical(const CompileResult& a, const CompileResult& b)
{
    EXPECT_EQ(a.physical, b.physical);
    EXPECT_EQ(a.initial_positions, b.initial_positions);
    EXPECT_EQ(a.final_positions, b.final_positions);
    EXPECT_EQ(a.swaps_inserted, b.swaps_inserted);
    EXPECT_EQ(a.two_qubit_count, b.two_qubit_count);
    EXPECT_EQ(a.type_usage, b.type_usage);
    EXPECT_DOUBLE_EQ(a.estimated_fidelity, b.estimated_fidelity);
    ASSERT_EQ(a.circuit.size(), b.circuit.size());
    for (size_t i = 0; i < a.circuit.size(); ++i) {
        ConstOpRef x = a.circuit.ops()[i];
        ConstOpRef y = b.circuit.ops()[i];
        EXPECT_EQ(x.qubits(), y.qubits());
        EXPECT_EQ(x.labelId(), y.labelId());
        EXPECT_DOUBLE_EQ(x.errorRate(), y.errorRate());
        EXPECT_EQ(x.unitary().maxAbsDiff(y.unitary()), 0.0);
    }
}

// --------------------------------------------------------- bit-identity

TEST(CompileService, ResultsBitIdenticalToCompileCircuit)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet = twoShardFleet();
    std::vector<Circuit> apps = makeWorkload(6, 3);

    CompileServiceOptions options;
    options.workers = 4;
    CompileService service(fleet, set, options);

    std::vector<CompileJob> jobs;
    for (const Circuit& app : apps)
        jobs.push_back(service.submit(requestFor({app})));

    for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        ASSERT_EQ(jobs[i].wait(), JobStatus::Done);
        const std::vector<CompileResult>& results = jobs[i].results();
        ASSERT_EQ(results.size(), 1u);
        int s = jobs[i].plan().assignments[0].shard;
        ASSERT_GE(s, 0);
        const Shard& shard = fleet.shard(static_cast<size_t>(s));
        ProfileCache solo_cache;
        CompileResult solo = compileCircuit(apps[i], shard.device, set,
                                            solo_cache, shard.options);
        expectIdentical(solo, results[0]);
    }
}

TEST(CompileService, InlineAndAsyncModesAgree)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet = twoShardFleet();
    std::vector<Circuit> apps = makeWorkload(4, 3);

    CompileService inline_service(fleet, set, CompileServiceOptions());
    CompileJob inline_job = inline_service.submit(requestFor(apps));
    ASSERT_EQ(inline_job.wait(), JobStatus::Done);

    CompileServiceOptions async_options;
    async_options.workers = 4;
    CompileService async_service(fleet, set, async_options);
    CompileJob async_job = async_service.submit(requestFor(apps));
    ASSERT_EQ(async_job.wait(), JobStatus::Done);

    const auto& a = inline_job.results();
    const auto& b = async_job.results();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("circuit " + std::to_string(i));
        EXPECT_EQ(inline_job.plan().assignments[i].shard,
                  async_job.plan().assignments[i].shard);
        expectIdentical(a[i], b[i]);
    }
}

// ------------------------------------------------------------ ordering

TEST(CompileService, FifoWithinPriorityDispatchOrder)
{
    GateSet set = isa::rigettiSet(1);
    CompileServiceOptions options;
    options.workers = 1; // one worker => dispatch order is total
    CompileService service(twoShardFleet(), set, options);

    service.pause();
    std::vector<Circuit> one = makeWorkload(1, 3);
    CompileJob low_first = service.submit(requestFor(one, 0));
    CompileJob high_first = service.submit(requestFor(one, 5));
    CompileJob high_second = service.submit(requestFor(one, 5));
    CompileJob low_second = service.submit(requestFor(one, 0));
    service.resume();

    ASSERT_EQ(low_first.wait(), JobStatus::Done);
    ASSERT_EQ(high_first.wait(), JobStatus::Done);
    ASSERT_EQ(high_second.wait(), JobStatus::Done);
    ASSERT_EQ(low_second.wait(), JobStatus::Done);

    uint64_t hf = high_first.stats().dispatch_seq[0];
    uint64_t hs = high_second.stats().dispatch_seq[0];
    uint64_t lf = low_first.stats().dispatch_seq[0];
    uint64_t ls = low_second.stats().dispatch_seq[0];
    ASSERT_NE(hf, 0u);
    EXPECT_LT(hf, hs) << "FIFO within priority 5";
    EXPECT_LT(hs, lf) << "priority 5 dispatches before priority 0";
    EXPECT_LT(lf, ls) << "FIFO within priority 0";
}

// --------------------------------------------------------- cancellation

TEST(CompileService, CancelBeforeDispatchDropsQueuedWork)
{
    GateSet set = isa::rigettiSet(1);
    CompileServiceOptions options;
    options.workers = 1;
    CompileService service(twoShardFleet(), set, options);

    service.pause();
    CompileJob job = service.submit(requestFor(makeWorkload(3, 3)));
    EXPECT_EQ(job.poll(), JobStatus::Queued);

    EXPECT_TRUE(job.cancel());
    EXPECT_EQ(job.poll(), JobStatus::Cancelled);
    EXPECT_ANY_THROW(job.results());

    CompileServiceStats stats = service.stats();
    EXPECT_EQ(stats.queued, 0u);
    EXPECT_EQ(stats.cancelled, 1u);
    // Released in queue order, summed in assignment order: compare
    // with a tolerance for float non-associativity.
    for (double backlog : stats.backlog_ns)
        EXPECT_NEAR(backlog, 0.0, 1e-6)
            << "cancel must release predicted backlog";

    // The queue is empty, so later work is unaffected.
    service.resume();
    CompileJob next = service.submit(requestFor(makeWorkload(1, 3)));
    EXPECT_EQ(next.wait(), JobStatus::Done);
}

TEST(CompileService, CancelAfterCompletionReturnsFalse)
{
    GateSet set = isa::rigettiSet(1);
    CompileService service(twoShardFleet(), set, CompileServiceOptions());
    CompileJob job = service.submit(requestFor(makeWorkload(1, 3)));
    ASSERT_EQ(job.wait(), JobStatus::Done);
    EXPECT_FALSE(job.cancel());
    EXPECT_EQ(job.poll(), JobStatus::Done);
}

// ---------------------------------------------------- admission control

TEST(CompileService, RejectsUnmeetableDeadline)
{
    GateSet set = isa::rigettiSet(1);
    CompileService service(twoShardFleet(), set, CompileServiceOptions());

    CompileRequest request = requestFor(makeWorkload(2, 3));
    request.deadline_ns = 1e-6; // far below any predicted duration
    CompileJob job = service.submit(std::move(request));
    EXPECT_EQ(job.poll(), JobStatus::Rejected);
    EXPECT_EQ(job.wait(), JobStatus::Rejected);
    EXPECT_ANY_THROW(job.results());

    CompileServiceStats stats = service.stats();
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.admitted, 0u);
    for (double backlog : stats.backlog_ns)
        EXPECT_DOUBLE_EQ(backlog, 0.0);

    // Without the deadline the same request is admitted and compiles.
    CompileJob ok = service.submit(requestFor(makeWorkload(2, 3)));
    EXPECT_EQ(ok.wait(), JobStatus::Done);
}

TEST(CompileService, BacklogCapRejectsWhenQueuesFill)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet = twoShardFleet();
    std::vector<Circuit> one = makeWorkload(1, 3);

    // Size the cap off the planner's own prediction: one circuit fits,
    // a pile of queued duplicates does not.
    ShardPlan probe = planShardAssignments(one, fleet, set);
    double single_ns = probe.assignments[0].predicted_duration_ns;
    ASSERT_GT(single_ns, 0.0);

    CompileServiceOptions options;
    options.workers = 1;
    options.max_queue_ns = 2.5 * single_ns;
    CompileService service(fleet, set, options);

    service.pause(); // hold everything in the admission queues
    std::vector<CompileJob> jobs;
    int rejected = 0;
    for (int i = 0; i < 8; ++i) {
        CompileJob job = service.submit(requestFor(one));
        if (job.poll() == JobStatus::Rejected)
            ++rejected;
        jobs.push_back(std::move(job));
    }
    EXPECT_GT(rejected, 0) << "the backlog cap must eventually refuse";
    EXPECT_LT(rejected, 8) << "the first submissions must be admitted";
    service.resume();
    for (CompileJob& job : jobs) {
        JobStatus status = job.wait();
        EXPECT_TRUE(status == JobStatus::Done ||
                    status == JobStatus::Rejected);
    }
}

// ------------------------------------------------- validation / options

TEST(CompileService, ValidatesFleetAndRequestOptions)
{
    GateSet set = isa::rigettiSet(1);
    EXPECT_ANY_THROW(CompileService(DeviceFleet(fastCompile()), set,
                                    CompileServiceOptions()));

    CompileOptions other = fastCompile();
    other.nuop.seed = 99;
    DeviceFleet mixed;
    mixed.addDevice(lineDevice("alpha", 4, 0.995), fastCompile());
    mixed.addDevice(lineDevice("beta", 4, 0.990), other);
    EXPECT_ANY_THROW(CompileService(mixed, set, CompileServiceOptions()));

    CompileService service(twoShardFleet(), set, CompileServiceOptions());
    CompileRequest bad = requestFor(makeWorkload(1, 3));
    bad.options = other; // NuOp mismatch with the shared cache
    EXPECT_ANY_THROW(service.submit(std::move(bad)));

    // A per-request override that keeps NuOp intact is honored.
    CompileRequest routed = requestFor({makeQftCircuit(4)});
    CompileOptions sabre = fastCompile();
    sabre.routing = "sabre";
    routed.options = sabre;
    CompileJob job = service.submit(std::move(routed));
    ASSERT_EQ(job.wait(), JobStatus::Done);
    int s = job.plan().assignments[0].shard;
    ProfileCache solo_cache;
    CompileResult solo =
        compileCircuit(makeQftCircuit(4),
                       service.fleet().shard(static_cast<size_t>(s)).device,
                       set, solo_cache, sabre);
    expectIdentical(solo, job.results()[0]);

    // Empty requests complete immediately.
    CompileJob empty = service.submit(CompileRequest());
    EXPECT_EQ(empty.poll(), JobStatus::Done);
    EXPECT_TRUE(empty.results().empty());

    // Submission after shutdown is refused.
    service.shutdown();
    EXPECT_ANY_THROW(service.submit(requestFor(makeWorkload(1, 3))));
}

// ------------------------------------------------------------ telemetry

TEST(CompileService, JobStatsAndPassMetricsCarryServiceTelemetry)
{
    GateSet set = isa::rigettiSet(1);
    CompileService service(twoShardFleet(), set, CompileServiceOptions());
    std::vector<Circuit> apps = makeWorkload(4, 3);

    CompileJob first = service.submit(requestFor(apps));
    ASSERT_EQ(first.wait(), JobStatus::Done);
    CompileJobStats stats = first.stats();
    EXPECT_EQ(stats.circuits, 4u);
    ASSERT_EQ(stats.shards.size(), 4u);
    ASSERT_EQ(stats.dispatch_seq.size(), 4u);
    for (uint64_t seq : stats.dispatch_seq)
        EXPECT_NE(seq, 0u);
    EXPECT_GT(stats.compile_wall_ms, 0.0);
    EXPECT_GT(stats.mean_estimated_fidelity, 0.0);
    EXPECT_GT(stats.mean_predicted_fidelity, 0.0);
    EXPECT_GE(stats.queue_wait_ns_max, stats.queue_wait_ns_mean);
    EXPECT_GE(stats.cache_hit_ratio, 0.0);
    EXPECT_LE(stats.cache_hit_ratio, 1.0);
    EXPECT_GT(stats.cache_misses, 0u) << "cold cache compiles miss";

    // A repeat of the same workload hits the shared warm cache.
    CompileJob second = service.submit(requestFor(apps));
    ASSERT_EQ(second.wait(), JobStatus::Done);
    CompileJobStats warm = second.stats();
    EXPECT_EQ(warm.cache_misses, 0u);
    EXPECT_GT(warm.cache_hit_ratio, 0.0);

    // passMetrics(): per-pass roll-up plus a "service:job" row whose
    // counters are all summable, so they fold meaningfully across
    // jobs through accumulatePassMetrics.
    std::vector<PassMetric> metrics = first.passMetrics();
    ASSERT_FALSE(metrics.empty());
    EXPECT_EQ(metrics.back().pass, "service:job");
    EXPECT_EQ(metrics.back().counters.at("circuits"), 4.0);
    EXPECT_GT(metrics.back().counters.at("queue_wait_ns_total"), 0.0);
    EXPECT_GT(metrics.back().counters.at("cache_misses"), 0.0);

    std::vector<PassMetric> folded;
    accumulatePassMetrics(folded, first.passMetrics());
    accumulatePassMetrics(folded, second.passMetrics());
    const PassMetric* service_row = nullptr;
    for (const PassMetric& metric : folded)
        if (metric.pass == "service:job")
            service_row = &metric;
    ASSERT_NE(service_row, nullptr);
    EXPECT_EQ(service_row->counters.at("runs"), 2.0);
    EXPECT_EQ(service_row->counters.at("circuits"), 8.0);
    // The folded sums stay derivable: hit ratio across both jobs.
    double folded_hits = service_row->counters.at("cache_hits");
    double folded_misses = service_row->counters.at("cache_misses");
    ASSERT_GT(folded_hits + folded_misses, 0.0);
    double folded_ratio = folded_hits / (folded_hits + folded_misses);
    EXPECT_GT(folded_ratio, 0.0);
    EXPECT_LE(folded_ratio, 1.0);
    // Mean fidelity across the fold: sum / circuits stays a fidelity.
    double folded_fidelity =
        service_row->counters.at("estimated_fidelity_sum") /
        service_row->counters.at("circuits");
    EXPECT_GT(folded_fidelity, 0.0);
    EXPECT_LE(folded_fidelity, 1.0);

    // Per-shard service telemetry covers the whole workload.
    std::vector<PassMetric> shard_rows = service.shardTelemetry();
    ASSERT_EQ(shard_rows.size(), 2u);
    double assigned = 0.0;
    for (size_t s = 0; s < shard_rows.size(); ++s) {
        EXPECT_EQ(shard_rows[s].pass,
                  "shard:" + service.fleet().shard(s).name);
        assigned += shard_rows[s].counters.at("assigned");
        EXPECT_EQ(shard_rows[s].counters.at("assigned"),
                  shard_rows[s].counters.at("completed"));
    }
    EXPECT_EQ(assigned, 8.0);
}

// ---------------------------------------------------- cache persistence

TEST(CompileService, OwnedCachePersistsAcrossRestarts)
{
    GateSet set = isa::rigettiSet(1);
    std::string path =
        std::string(::testing::TempDir()) + "qiset_service_cache.txt";
    std::remove(path.c_str());
    std::vector<Circuit> apps = makeWorkload(3, 3);

    {
        CompileServiceOptions options;
        options.cache_path = path;
        CompileService service(twoShardFleet(), set, options);
        CompileJob job = service.submit(requestFor(apps));
        ASSERT_EQ(job.wait(), JobStatus::Done);
        EXPECT_GT(job.stats().cache_misses, 0u);
    } // shutdown persists the owned cache

    {
        CompileServiceOptions options;
        options.cache_path = path;
        CompileService service(twoShardFleet(), set, options);
        EXPECT_GT(service.profileCache().stats().loaded, 0u)
            << "restart must warm-start from the persisted cache";
        CompileJob job = service.submit(requestFor(apps));
        ASSERT_EQ(job.wait(), JobStatus::Done);
        EXPECT_EQ(job.stats().cache_misses, 0u)
            << "persisted profiles must cover the repeat run";
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------- concurrency

TEST(CompileService, ConcurrentSubmittersShareOneService)
{
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet = twoShardFleet();
    CompileServiceOptions options;
    options.workers = 4;
    CompileService service(fleet, set, options);

    constexpr int kSubmitters = 4;
    constexpr int kJobsEach = 3;
    std::vector<std::vector<CompileJob>> jobs(kSubmitters);
    std::vector<std::vector<Circuit>> workloads(kSubmitters);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
        workloads[t] = makeWorkload(kJobsEach, 3, 600 + t);
        submitters.emplace_back([&, t] {
            for (int j = 0; j < kJobsEach; ++j)
                jobs[t].push_back(service.submit(
                    requestFor({workloads[t][j]}, /*priority=*/t % 2)));
        });
    }
    for (std::thread& thread : submitters)
        thread.join();

    for (int t = 0; t < kSubmitters; ++t)
        for (int j = 0; j < kJobsEach; ++j) {
            SCOPED_TRACE("submitter " + std::to_string(t) + " job " +
                         std::to_string(j));
            CompileJob& job = jobs[t][j];
            ASSERT_EQ(job.wait(), JobStatus::Done);
            int s = job.plan().assignments[0].shard;
            ProfileCache solo_cache;
            CompileResult solo = compileCircuit(
                workloads[t][j],
                fleet.shard(static_cast<size_t>(s)).device, set,
                solo_cache,
                fleet.shard(static_cast<size_t>(s)).options);
            expectIdentical(solo, job.results()[0]);
        }

    CompileServiceStats stats = service.stats();
    EXPECT_EQ(stats.admitted,
              static_cast<uint64_t>(kSubmitters * kJobsEach));
    EXPECT_EQ(stats.completed,
              static_cast<uint64_t>(kSubmitters * kJobsEach));
    EXPECT_EQ(stats.queued, 0u);
    EXPECT_EQ(stats.in_flight, 0u);
}

// ------------------------------------------------- waits and callbacks

TEST(CompileService, WaitForExpiredDeadlineReturnsImmediately)
{
    GateSet set = isa::rigettiSet(1);
    CompileServiceOptions options;
    options.workers = 1;
    CompileService service(twoShardFleet(), set, options);

    // Paused service: the job cannot make progress, so any blocking
    // in waitFor() would be charged in full.
    service.pause();
    CompileJob job = service.submit(requestFor(makeWorkload(1, 3)));

    auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(job.waitFor(0.0), JobStatus::Queued);
    EXPECT_EQ(job.waitFor(-5.0), JobStatus::Queued);
    double elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    // An expired deadline answers from the current state — it must
    // not wait out a dispatch cycle (the old behavior blocked here).
    EXPECT_LT(elapsed_ms, 50.0);

    // A positive timeout on a stuck job returns Queued after ~the
    // timeout, not Done.
    EXPECT_EQ(job.waitFor(1.0), JobStatus::Queued);

    service.resume();
    ASSERT_EQ(job.wait(), JobStatus::Done);
    // Terminal: waitFor never blocks regardless of timeout sign.
    EXPECT_EQ(job.waitFor(0.0), JobStatus::Done);
    EXPECT_EQ(job.waitFor(1e9), JobStatus::Done);
}

TEST(CompileService, CompletionCallbackFiresOncePerJob)
{
    GateSet set = isa::rigettiSet(1);
    CompileServiceOptions options;
    options.workers = 2;
    CompileService service(twoShardFleet(), set, options);

    std::atomic<int> fired{0};
    std::atomic<int> done{0};
    CompileRequest request = requestFor(makeWorkload(2, 3));
    request.on_complete = [&](CompileJob job) {
        fired.fetch_add(1);
        if (job.poll() == JobStatus::Done &&
            job.results().size() == 2)
            done.fetch_add(1);
    };
    CompileJob job = service.submit(std::move(request));
    ASSERT_EQ(job.wait(), JobStatus::Done);
    service.shutdown();
    EXPECT_EQ(fired.load(), 1);
    EXPECT_EQ(done.load(), 1);

    // Registering on an already-terminal job fires synchronously.
    int late = 0;
    job.onComplete([&late](CompileJob j) {
        if (j.poll() == JobStatus::Done)
            ++late;
    });
    EXPECT_EQ(late, 1);
}

TEST(CompileService, CallbacksFireOnEveryTerminalPath)
{
    GateSet set = isa::rigettiSet(1);
    CompileServiceOptions options;
    options.workers = 1;
    CompileService service(twoShardFleet(), set, options);

    // Rejected (inline, on the submitting thread).
    JobStatus rejected_status = JobStatus::Queued;
    CompileRequest doomed = requestFor(makeWorkload(2, 3));
    doomed.deadline_ns = 1e-9;
    doomed.on_complete = [&](CompileJob job) {
        rejected_status = job.poll();
    };
    service.submit(std::move(doomed));
    EXPECT_EQ(rejected_status, JobStatus::Rejected);

    // Empty request: Done immediately, callback still fires.
    JobStatus empty_status = JobStatus::Queued;
    CompileRequest empty;
    empty.on_complete = [&](CompileJob job) {
        empty_status = job.poll();
    };
    service.submit(std::move(empty));
    EXPECT_EQ(empty_status, JobStatus::Done);

    // Cancelled while queued: the cancel path fires it.
    service.pause();
    std::atomic<int> cancelled{0};
    CompileRequest queued = requestFor(makeWorkload(2, 3));
    queued.on_complete = [&](CompileJob job) {
        if (job.poll() == JobStatus::Cancelled)
            cancelled.fetch_add(1);
    };
    CompileJob job = service.submit(std::move(queued));
    EXPECT_TRUE(job.cancel());
    EXPECT_EQ(cancelled.load(), 1);
    service.resume();

    // Registered mid-flight via the handle (async completion path).
    std::atomic<int> async_fired{0};
    CompileJob running = service.submit(requestFor(makeWorkload(1, 3)));
    running.onComplete([&](CompileJob j) {
        if (j.poll() == JobStatus::Done)
            async_fired.fetch_add(1);
    });
    ASSERT_NE(running.wait(), JobStatus::Failed);
    service.shutdown();
    EXPECT_EQ(async_fired.load(), 1);
}

TEST(CompileService, InlineModeFiresCallbackBeforeSubmitReturns)
{
    GateSet set = isa::rigettiSet(1);
    CompileService service(twoShardFleet(), set,
                           CompileServiceOptions());
    bool fired = false;
    CompileRequest request = requestFor(makeWorkload(1, 3));
    request.on_complete = [&fired](CompileJob job) {
        fired = job.poll() == JobStatus::Done;
    };
    service.submit(std::move(request));
    EXPECT_TRUE(fired);
}

} // namespace
} // namespace qiset
