// Decomposition-engine registry, analytic KAK synthesis and the
// Weyl-canonicalized profile cache.

#include <gtest/gtest.h>

#include "apps/qv.h"
#include "common/error.h"
#include "common/rng.h"
#include "compiler/translate.h"
#include "isa/gate_set.h"
#include "nuop/decomposition_strategy.h"
#include "nuop/template_circuit.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

NuOpOptions
fastNuOp()
{
    NuOpOptions opts;
    opts.max_layers = 4;
    opts.multistarts = 3;
    opts.exact_threshold = 1.0 - 1e-6;
    return opts;
}

GateSpec
czSpec()
{
    GateSpec spec{"S3", TemplateFamily::Fixed, cz(),
                  AnalyticTier::Unspecified};
    return spec;
}

GateSpec
iswapSpec()
{
    GateSpec spec{"S4", TemplateFamily::Fixed, iswap(),
                  AnalyticTier::Unspecified};
    return spec;
}

/** Fd of an analytic synthesis result against its target. */
double
synthesisFidelity(const AnalyticSynthesis& synthesis,
                  const GateSpec& spec, const Matrix& target)
{
    TwoQubitTemplate templ(synthesis.layers, spec.unitary);
    return 1.0 - templ.infidelity(synthesis.params, target);
}

TEST(DecompositionRegistry, BuiltinsRegistered)
{
    auto names = decompositionStrategyNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "nuop"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "kak"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "auto"), names.end());
    EXPECT_THROW(makeDecompositionStrategy("no-such-engine"), FatalError);
}

TEST(DecompositionRegistry, CustomStrategyRegistersOnce)
{
    class Custom : public DecompositionStrategy
    {
      public:
        std::string name() const override { return "custom-test"; }
        std::string cacheKey(const Matrix& target,
                             const GateSpec& spec) const override
        {
            return "custom-test|" + profileKeyCore(target, spec);
        }
        GateProfile computeProfile(const Matrix&, const GateSpec& spec,
                                   const NuOpDecomposer&) const override
        {
            GateProfile profile;
            profile.type_name = spec.type_name;
            return profile;
        }
    };
    EXPECT_TRUE(registerDecompositionStrategy(
        "custom-test", [] { return std::make_unique<Custom>(); }));
    // Second registration under the same name is refused.
    EXPECT_FALSE(registerDecompositionStrategy(
        "custom-test", [] { return std::make_unique<Custom>(); }));
    EXPECT_EQ(makeDecompositionStrategy("custom-test")->name(),
              "custom-test");
}

TEST(AnalyticSynthesisTest, SbmMinimalLayerCounts)
{
    // The analytic engine with a CZ-class gate must hit exactly the
    // Shende-Bullock-Markov minimal application count.
    Rng rng(21);
    struct Case
    {
        Matrix target;
        int layers;
    };
    std::vector<Case> cases = {
        {u3(0.3, 1.0, 2.0).kron(u3(1.7, 0.1, 0.9)), 0}, // local
        {cnot(), 1},
        {cz(), 1},
        {zz(0.37), 2},      // controlled-phase class
        {iswap(), 2},       // XY class (trace real)
        {swap(), 3},
        {randomSu4(rng), 3} // generic SU(4)
    };
    for (const auto& c : cases) {
        AnalyticSynthesis synthesis = kakSynthesize(c.target, czSpec());
        ASSERT_TRUE(synthesis.ok);
        EXPECT_EQ(synthesis.layers, c.layers);
        EXPECT_EQ(synthesis.layers, minimalCzCount(c.target));
        EXPECT_NEAR(synthesisFidelity(synthesis, czSpec(), c.target),
                    1.0, 1e-9);
    }
}

TEST(AnalyticSynthesisTest, RandomSu4SweepIsExact)
{
    Rng rng(22);
    for (int trial = 0; trial < 12; ++trial) {
        Matrix target = randomSu4(rng);
        AnalyticSynthesis synthesis = kakSynthesize(target, czSpec());
        ASSERT_TRUE(synthesis.ok) << trial;
        EXPECT_NEAR(synthesisFidelity(synthesis, czSpec(), target), 1.0,
                    1e-9)
            << trial;
    }
}

TEST(AnalyticSynthesisTest, NonCzGateServesOnlyItsOwnClass)
{
    // iSWAP is not CZ-class: one layer for iSWAP-class targets,
    // nothing for a generic SU(4).
    Matrix dressed_iswap =
        u3(0.4, 1.2, 0.7).kron(u3(2.2, 0.3, 1.9)) * iswap() *
        u3(1.0, 0.5, 2.8).kron(u3(0.2, 1.4, 0.6));
    AnalyticSynthesis one = kakSynthesize(dressed_iswap, iswapSpec());
    ASSERT_TRUE(one.ok);
    EXPECT_EQ(one.layers, 1);
    EXPECT_NEAR(synthesisFidelity(one, iswapSpec(), dressed_iswap), 1.0,
                1e-9);

    Rng rng(23);
    AnalyticSynthesis generic =
        kakSynthesize(randomSu4(rng), iswapSpec());
    EXPECT_FALSE(generic.ok);

    // Local targets still cost zero layers on any gate type.
    AnalyticSynthesis local = kakSynthesize(
        u3(0.9, 0.1, 1.1).kron(u3(0.2, 2.2, 0.5)), iswapSpec());
    ASSERT_TRUE(local.ok);
    EXPECT_EQ(local.layers, 0);
}

TEST(AnalyticSynthesisTest, AgreesWithNuOpAtExactThreshold)
{
    // Same layer count and threshold-meeting Fd as the BFGS ladder on
    // targets both engines solve exactly.
    NuOpDecomposer decomposer(fastNuOp());
    double threshold = decomposer.options().exact_threshold;
    for (const Matrix& target : {zz(0.3), cnot(), swap()}) {
        AnalyticSynthesis analytic = kakSynthesize(target, czSpec());
        ASSERT_TRUE(analytic.ok);
        GateProfile numeric = nuopDecompositionStrategy().computeProfile(
            target, czSpec(), decomposer);
        ASSERT_FALSE(numeric.fits.empty());
        const LayerFit& best = numeric.fits.back();
        EXPECT_GE(best.fd, threshold);
        EXPECT_EQ(analytic.layers, best.layers);
        EXPECT_GE(synthesisFidelity(analytic, czSpec(), target),
                  threshold);
    }
}

TEST(LocalEquivalenceSolver, RecoversDressingLocals)
{
    Rng rng(24);
    for (int trial = 0; trial < 8; ++trial) {
        Matrix u = randomSu4(rng);
        Matrix left = u3(rng.uniform(0, 6), rng.uniform(0, 6),
                         rng.uniform(0, 6))
                          .kron(u3(rng.uniform(0, 6), rng.uniform(0, 6),
                                   rng.uniform(0, 6)));
        Matrix right = u3(rng.uniform(0, 6), rng.uniform(0, 6),
                          rng.uniform(0, 6))
                           .kron(u3(rng.uniform(0, 6), rng.uniform(0, 6),
                                    rng.uniform(0, 6)));
        Matrix v = left * u * right;
        LocalEquivalence eq = localFactorsBetween(u, v);
        ASSERT_TRUE(eq.ok) << trial;
        Matrix rebuilt = (eq.left * u * eq.right) * eq.phase;
        EXPECT_LT(rebuilt.maxAbsDiff(v), 1e-9) << trial;
    }
}

TEST(LocalEquivalenceSolver, RejectsInequivalentPairs)
{
    EXPECT_FALSE(localFactorsBetween(cz(), swap()).ok);
    EXPECT_FALSE(localFactorsBetween(iswap(), zz(0.3)).ok);
}

TEST(CanonicalKeys, LocallyEquivalentTargetsShareOneEntry)
{
    // The cache-hit-rate multiplier: dressed variants of one
    // interaction class miss once and then hit, under "kak" and
    // "auto" alike.
    NuOpDecomposer decomposer(fastNuOp());
    auto kak = makeDecompositionStrategy("kak");
    ProfileCache cache;
    Matrix base = zz(0.42);
    Matrix dressed = u3(0.8, 2.0, 0.1).kron(u3(1.1, 0.4, 2.6)) * base *
                     u3(0.3, 1.8, 0.9).kron(u3(2.4, 0.2, 1.2));
    EXPECT_EQ(kak->cacheKey(base, czSpec()),
              kak->cacheKey(dressed, czSpec()));
    auto first = cache.get(base, czSpec(), decomposer, *kak);
    auto second = cache.get(dressed, czSpec(), decomposer, *kak);
    EXPECT_EQ(first.get(), second.get());
    ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);

    // Different classes stay separate.
    EXPECT_NE(kak->cacheKey(zz(0.42), czSpec()),
              kak->cacheKey(zz(0.17), czSpec()));
    // Raw "nuop" keys keep dressed variants apart (pre-refactor
    // behavior).
    const DecompositionStrategy& nuop = nuopDecompositionStrategy();
    EXPECT_NE(nuop.cacheKey(base, czSpec()),
              nuop.cacheKey(dressed, czSpec()));
}

TEST(AutoStrategy, TiersAnalyticAndNumericFallback)
{
    NuOpDecomposer decomposer(fastNuOp());
    auto automatic = makeDecompositionStrategy("auto");
    // CZ spec on any SU(4): analytic engine serves it.
    Rng rng(25);
    Matrix generic = randomSu4(rng);
    GateProfile analytic =
        automatic->computeProfile(generic, czSpec(), decomposer);
    ASSERT_FALSE(analytic.fits.empty());
    EXPECT_EQ(analytic.engine, "kak");
    // A ladder of per-depth optimal approximations, exact at the SBM
    // minimum (three applications for a generic SU(4)).
    EXPECT_EQ(analytic.fits.back().layers, 3);
    EXPECT_GE(analytic.fits.back().fd,
              decomposer.options().exact_threshold);
    for (size_t f = 1; f < analytic.fits.size(); ++f)
        EXPECT_GE(analytic.fits[f].fd, analytic.fits[f - 1].fd);

    // iSWAP spec on a generic target: the analytic tier cannot hit
    // the exact threshold, so the BFGS ladder takes over.
    GateProfile numeric =
        automatic->computeProfile(generic, iswapSpec(), decomposer);
    EXPECT_EQ(numeric.engine, "nuop");
    EXPECT_GT(numeric.fits.size(), 1u);
}

TEST(KakStrategy, ProfilesCanonicalRepresentative)
{
    NuOpDecomposer decomposer(fastNuOp());
    auto kak = makeDecompositionStrategy("kak");
    Matrix dressed = u3(1.9, 0.3, 0.8).kron(u3(0.5, 1.1, 2.0)) * zz(0.31);
    GateProfile profile =
        kak->computeProfile(dressed, czSpec(), decomposer);
    ASSERT_FALSE(profile.fits.empty());
    EXPECT_EQ(profile.engine, "kak");
    // The stored exact fit implements the class representative, not
    // the dressed target (the translator re-dresses at emission).
    Matrix representative = kak->profileTarget(dressed);
    const LayerFit& exact = profile.fits.back();
    EXPECT_EQ(exact.layers, 2); // controlled-phase class
    TwoQubitTemplate templ(exact.layers, cz());
    EXPECT_NEAR(1.0 - templ.infidelity(exact.params, representative),
                1.0, 1e-9);
}

TEST(TranslateWithStrategies, KakEmissionImplementsDressedTargets)
{
    // End-to-end: a circuit of dressed controlled-phase blocks and a
    // generic SU(4) translates exactly through the analytic engine,
    // including the canonical-representative re-dressing.
    Device d("pair", Topology::line(2));
    d.setEdgeFidelity(0, 1, "S3", 0.99);
    d.setOneQubitError(0, 0.001);
    d.setOneQubitError(1, 0.001);
    GateSet set = isa::singleTypeSet(3);
    NuOpDecomposer decomposer(fastNuOp());
    auto kak = makeDecompositionStrategy("kak");
    ProfileCache cache;

    Rng rng(26);
    Circuit logical(2);
    logical.add2q(0, 1,
                  u3(0.7, 1.2, 0.4).kron(u3(2.1, 0.9, 1.5)) * zz(0.55),
                  "dressedZZ");
    logical.add2q(0, 1, randomSu4(rng), "SU4");

    TranslateResult result =
        translateCircuit(logical, {0, 1}, d, set, decomposer, *kak,
                         cache, /*approximate=*/false);
    EXPECT_NEAR(traceFidelity(result.circuit.unitary(),
                              logical.unitary()),
                1.0, 1e-6);
    EXPECT_EQ(result.two_qubit_count, 2 + 3); // SBM-minimal: 2 + 3
    EXPECT_EQ(result.analytic_ops, 2);
}

TEST(TranslateWithStrategies, AutoMatchesNuOpFidelityInExactMode)
{
    // Exact-mode Fu parity: the analytic tier's minimal-depth exact
    // fits can only match or beat the BFGS ladder's.
    Device d("pair", Topology::line(2));
    d.setEdgeFidelity(0, 1, "S3", 0.99);
    d.setOneQubitError(0, 0.001);
    d.setOneQubitError(1, 0.001);
    GateSet set = isa::singleTypeSet(3);
    NuOpDecomposer decomposer(fastNuOp());

    Rng rng(27);
    Circuit logical(2);
    logical.add2q(0, 1, zz(0.8), "ZZ");
    logical.add2q(0, 1, randomSu4(rng), "SU4");

    ProfileCache nuop_cache;
    TranslateResult nuop_result = translateCircuit(
        logical, {0, 1}, d, set, decomposer, nuop_cache, false);
    ProfileCache auto_cache;
    auto automatic = makeDecompositionStrategy("auto");
    TranslateResult auto_result =
        translateCircuit(logical, {0, 1}, d, set, decomposer,
                         *automatic, auto_cache, false);
    EXPECT_GE(auto_result.estimated_fidelity + 1e-9,
              nuop_result.estimated_fidelity);
    EXPECT_LE(auto_result.two_qubit_count, nuop_result.two_qubit_count);
    EXPECT_EQ(auto_result.analytic_ops, 2);
    EXPECT_EQ(nuop_result.analytic_ops, 0);
}

TEST(U3AngleExtraction, RoundTripsRepresentativeMatrices)
{
    Rng rng(28);
    std::vector<Matrix> cases = {
        Matrix::identity(2),
        pauliX(),
        pauliZ(),
        hadamard(),
        rz(0.4) * std::exp(cplx(0.0, -0.785398163)), // phased diagonal
        u3(2.1, 0.3, 5.9),
    };
    for (int trial = 0; trial < 6; ++trial)
        cases.push_back(u3(rng.uniform(0, 6.28), rng.uniform(0, 6.28),
                           rng.uniform(0, 6.28)) *
                        std::exp(cplx(0.0, rng.uniform(0, 6.28))));
    for (const Matrix& m : cases) {
        auto angles = u3Angles(m);
        EXPECT_NEAR(traceFidelity(u3(angles[0], angles[1], angles[2]), m),
                    1.0, 1e-9);
    }
}

} // namespace
} // namespace qiset
