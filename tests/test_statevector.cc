// State-vector simulator tests.

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "qc/gates.h"
#include "sim/statevector.h"

namespace qiset {
namespace {

using namespace gates;

TEST(StateVector, InitializesToBasisState)
{
    StateVector s(3, 5);
    auto probs = s.probabilities();
    for (size_t i = 0; i < probs.size(); ++i)
        EXPECT_NEAR(probs[i], i == 5 ? 1.0 : 0.0, 1e-12);
}

TEST(StateVector, HadamardCreatesSuperposition)
{
    StateVector s(1);
    s.apply1q(hadamard(), 0);
    auto probs = s.probabilities();
    EXPECT_NEAR(probs[0], 0.5, 1e-12);
    EXPECT_NEAR(probs[1], 0.5, 1e-12);
}

TEST(StateVector, BellState)
{
    StateVector s(2);
    s.apply1q(hadamard(), 0);
    s.apply2q(cnot(), 0, 1);
    auto probs = s.probabilities();
    EXPECT_NEAR(probs[0], 0.5, 1e-12);
    EXPECT_NEAR(probs[3], 0.5, 1e-12);
    EXPECT_NEAR(probs[1] + probs[2], 0.0, 1e-12);
}

TEST(StateVector, GhzOnFiveQubits)
{
    const int n = 5;
    StateVector s(n);
    s.apply1q(hadamard(), 0);
    for (int q = 0; q + 1 < n; ++q)
        s.apply2q(cnot(), q, q + 1);
    auto probs = s.probabilities();
    EXPECT_NEAR(probs.front(), 0.5, 1e-12);
    EXPECT_NEAR(probs.back(), 0.5, 1e-12);
}

TEST(StateVector, ApplyMatchesEmbeddedUnitary)
{
    // Gate application via bit arithmetic must agree with the dense
    // embedded matrix acting on the amplitude vector.
    const int n = 4;
    Circuit c(n);
    c.add1q(2, tGate());
    c.add2q(3, 1, fsim(0.7, 1.3));
    c.add2q(0, 2, iswap());

    StateVector fast(n);
    fast.apply1q(hadamard(), 0);
    fast.apply1q(hadamard(), 1);
    fast.apply1q(hadamard(), 2);
    fast.apply1q(hadamard(), 3);
    StateVector reference = fast;

    fast.run(c);

    Matrix full = c.unitary();
    std::vector<cplx> expected(full.rows());
    for (size_t r = 0; r < full.rows(); ++r) {
        cplx sum(0.0, 0.0);
        for (size_t k = 0; k < full.cols(); ++k)
            sum += full(r, k) * reference.amplitudes()[k];
        expected[r] = sum;
    }
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_NEAR(std::abs(fast.amplitudes()[i] - expected[i]), 0.0,
                    1e-10);
}

TEST(StateVector, NormPreservedByUnitaries)
{
    StateVector s(3);
    s.apply1q(hadamard(), 1);
    s.apply2q(sycamore(), 0, 2);
    s.apply2q(swap(), 1, 2);
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(StateVector, NormalizeRescales)
{
    StateVector s(1);
    s.mutableAmplitudes()[0] = cplx(3.0, 0.0);
    s.mutableAmplitudes()[1] = cplx(0.0, 4.0);
    s.normalize();
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(s.amplitudes()[0]), 0.6, 1e-12);
}

TEST(StateVector, InnerProductOfOrthogonalStates)
{
    StateVector a(2, 0), b(2, 3);
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(a.innerProduct(a) - cplx(1.0)), 0.0, 1e-12);
}

TEST(StateVector, SamplingMatchesProbabilities)
{
    StateVector s(2);
    s.apply1q(hadamard(), 0);
    s.apply2q(cnot(), 0, 1);
    Rng rng(99);
    auto outcomes = s.sample(rng, 4000);
    int count00 = 0, count11 = 0;
    for (size_t o : outcomes) {
        if (o == 0)
            ++count00;
        else if (o == 3)
            ++count11;
        else
            FAIL() << "sampled impossible outcome " << o;
    }
    EXPECT_NEAR(static_cast<double>(count00) / outcomes.size(), 0.5,
                0.05);
    EXPECT_NEAR(static_cast<double>(count11) / outcomes.size(), 0.5,
                0.05);
}

TEST(StateVector, TwentyQubitGateApplication)
{
    // The FH-20 workload needs wide registers; check norm is kept.
    StateVector s(20);
    s.apply1q(hadamard(), 10);
    s.apply2q(iswap(), 0, 19);
    s.apply2q(fsim(0.3, 0.9), 7, 8);
    EXPECT_NEAR(s.norm(), 1.0, 1e-10);
}

} // namespace
} // namespace qiset
