// Unit and property tests for QR, Haar sampling, the Jacobi
// eigensolver and simultaneous diagonalization.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "qc/linalg.h"

namespace qiset {
namespace {

TEST(Qr, ReconstructsInput)
{
    Rng rng(7);
    Matrix a(4, 4);
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j)
            a(i, j) = rng.normalComplex();
    Matrix q, r;
    qrDecompose(a, q, r);
    EXPECT_LT((q * r).maxAbsDiff(a), 1e-10);
    EXPECT_TRUE(q.isUnitary(1e-10));
}

TEST(Qr, RIsUpperTriangular)
{
    Rng rng(8);
    Matrix a(3, 3);
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            a(i, j) = rng.normalComplex();
    Matrix q, r;
    qrDecompose(a, q, r);
    for (size_t i = 1; i < 3; ++i)
        for (size_t j = 0; j < i; ++j)
            EXPECT_LT(std::abs(r(i, j)), 1e-12);
}

class HaarUnitaryTest : public ::testing::TestWithParam<int>
{
};

TEST_P(HaarUnitaryTest, ProducesUnitary)
{
    Rng rng(11 + GetParam());
    Matrix u = haarRandomUnitary(GetParam(), rng);
    EXPECT_TRUE(u.isUnitary(1e-10));
}

INSTANTIATE_TEST_SUITE_P(Dims, HaarUnitaryTest,
                         ::testing::Values(2, 3, 4, 8));

TEST(HaarUnitary, SamplesDiffer)
{
    Rng rng(5);
    Matrix a = haarRandomUnitary(4, rng);
    Matrix b = haarRandomUnitary(4, rng);
    EXPECT_GT(a.maxAbsDiff(b), 1e-3);
}

TEST(HaarUnitary, EigenphaseDistributionRoughlyUniform)
{
    // Haar unitaries have eigenvalues spread over the circle; a crude
    // check: the mean trace over samples is near zero.
    Rng rng(13);
    cplx mean(0.0, 0.0);
    const int samples = 200;
    for (int s = 0; s < samples; ++s)
        mean += haarRandomUnitary(4, rng).trace();
    mean /= static_cast<double>(samples);
    EXPECT_LT(std::abs(mean), 0.35);
}

TEST(JacobiEigen, DiagonalizesKnownMatrix)
{
    // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
    Matrix a{{2.0, 1.0}, {1.0, 2.0}};
    SymmetricEigen eig = jacobiEigenSymmetric(a);
    std::vector<double> values = eig.values;
    std::sort(values.begin(), values.end());
    EXPECT_NEAR(values[0], 1.0, 1e-10);
    EXPECT_NEAR(values[1], 3.0, 1e-10);
}

TEST(JacobiEigen, ReconstructsRandomSymmetric)
{
    Rng rng(21);
    const size_t n = 5;
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i; j < n; ++j) {
            double v = rng.normal();
            a(i, j) = v;
            a(j, i) = v;
        }
    SymmetricEigen eig = jacobiEigenSymmetric(a);
    Matrix d(n, n);
    for (size_t i = 0; i < n; ++i)
        d(i, i) = eig.values[i];
    Matrix recon = eig.vectors * d * eig.vectors.transpose();
    EXPECT_LT(recon.maxAbsDiff(a), 1e-9);
    EXPECT_TRUE(eig.vectors.isUnitary(1e-9));
}

TEST(SimultaneousDiagonalize, CommutingPair)
{
    // A has a degenerate eigenvalue; B breaks the degeneracy. Both are
    // diagonal in the same (rotated) basis.
    Matrix r{{std::cos(0.4), -std::sin(0.4), 0.0},
             {std::sin(0.4), std::cos(0.4), 0.0},
             {0.0, 0.0, 1.0}};
    Matrix da(3, 3), db(3, 3);
    da(0, 0) = 2.0;
    da(1, 1) = 2.0;
    da(2, 2) = 5.0;
    db(0, 0) = 1.0;
    db(1, 1) = 3.0;
    db(2, 2) = 4.0;
    Matrix a = r * da * r.transpose();
    Matrix b = r * db * r.transpose();

    Matrix v = simultaneousDiagonalize(a, b);
    Matrix a_diag = v.transpose() * a * v;
    Matrix b_diag = v.transpose() * b * v;
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j) {
            if (i == j)
                continue;
            EXPECT_LT(std::abs(a_diag(i, j)), 1e-8);
            EXPECT_LT(std::abs(b_diag(i, j)), 1e-8);
        }
}

TEST(Determinant, KnownValues)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_NEAR(std::abs(determinant(a) - cplx(-2.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(determinant(Matrix::identity(5)) - cplx(1.0)),
                0.0, 1e-12);
}

TEST(Determinant, UnitaryHasUnitModulus)
{
    Rng rng(3);
    Matrix u = haarRandomUnitary(4, rng);
    EXPECT_NEAR(std::abs(determinant(u)), 1.0, 1e-10);
}

TEST(Determinant, SingularMatrixIsZero)
{
    Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_NEAR(std::abs(determinant(a)), 0.0, 1e-12);
}

} // namespace
} // namespace qiset
