// Unit tests for the dense complex matrix type.

#include <gtest/gtest.h>

#include <utility>

#include "common/error.h"
#include "qc/gates.h"
#include "qc/matrix.h"

namespace qiset {
namespace {

TEST(Matrix, IdentityHasUnitDiagonal)
{
    Matrix id = Matrix::identity(4);
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j)
            EXPECT_EQ(id(i, j), (i == j ? cplx(1.0) : cplx(0.0)));
}

TEST(Matrix, InitializerListLayout)
{
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_EQ(m(0, 1), cplx(2.0));
    EXPECT_EQ(m(1, 0), cplx(3.0));
}

TEST(Matrix, MultiplicationMatchesHandComputation)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    Matrix c = a * b;
    EXPECT_EQ(c(0, 0), cplx(19.0));
    EXPECT_EQ(c(0, 1), cplx(22.0));
    EXPECT_EQ(c(1, 0), cplx(43.0));
    EXPECT_EQ(c(1, 1), cplx(50.0));
}

TEST(Matrix, MultiplicationShapeMismatchThrows)
{
    Matrix a(2, 3), b(2, 2);
    EXPECT_THROW(a * b, FatalError);
}

TEST(Matrix, DaggerConjugatesAndTransposes)
{
    Matrix m{{cplx(1.0, 2.0), cplx(3.0, -1.0)},
             {cplx(0.0, 1.0), cplx(2.0, 0.0)}};
    Matrix d = m.dagger();
    EXPECT_EQ(d(0, 0), cplx(1.0, -2.0));
    EXPECT_EQ(d(0, 1), cplx(0.0, -1.0));
    EXPECT_EQ(d(1, 0), cplx(3.0, 1.0));
}

TEST(Matrix, TraceSumsDiagonal)
{
    Matrix m{{cplx(1.0, 1.0), 0.0}, {0.0, cplx(2.0, -3.0)}};
    EXPECT_EQ(m.trace(), cplx(3.0, -2.0));
}

TEST(Matrix, KroneckerProductOfPaulis)
{
    Matrix zz = gates::pauliZ().kron(gates::pauliZ());
    EXPECT_EQ(zz(0, 0), cplx(1.0));
    EXPECT_EQ(zz(1, 1), cplx(-1.0));
    EXPECT_EQ(zz(2, 2), cplx(-1.0));
    EXPECT_EQ(zz(3, 3), cplx(1.0));
    EXPECT_EQ(zz(0, 1), cplx(0.0));
}

TEST(Matrix, KroneckerDimensions)
{
    Matrix a(2, 3), b(4, 5);
    Matrix k = a.kron(b);
    EXPECT_EQ(k.rows(), 8u);
    EXPECT_EQ(k.cols(), 15u);
}

TEST(Matrix, FrobeniusNormOfIdentity)
{
    EXPECT_NEAR(Matrix::identity(4).frobeniusNorm(), 2.0, 1e-12);
}

TEST(Matrix, UnitaryDetection)
{
    EXPECT_TRUE(gates::hadamard().isUnitary());
    EXPECT_TRUE(gates::fsim(0.3, 1.1).isUnitary());
    Matrix not_unitary{{1.0, 1.0}, {0.0, 1.0}};
    EXPECT_FALSE(not_unitary.isUnitary());
}

TEST(Matrix, HermitianDetection)
{
    EXPECT_TRUE(gates::pauliY().isHermitian());
    EXPECT_FALSE(gates::sGate().isHermitian());
}

TEST(Matrix, TraceFidelityIsPhaseInvariant)
{
    Matrix u = gates::fsim(0.7, 0.2);
    Matrix v = u * cplx(std::cos(1.3), std::sin(1.3));
    EXPECT_NEAR(traceFidelity(u, v), 1.0, 1e-12);
}

TEST(Matrix, TraceFidelityDistinguishesGates)
{
    double f = traceFidelity(gates::cz(), gates::iswap());
    EXPECT_LT(f, 0.999);
    EXPECT_GE(f, 0.0);
}

TEST(Matrix, HilbertSchmidtOfIdenticalUnitaries)
{
    Matrix u = gates::sycamore();
    EXPECT_NEAR(std::abs(hilbertSchmidt(u, u)), 4.0, 1e-12);
}

TEST(Matrix, MaxAbsDiff)
{
    Matrix a = Matrix::identity(2);
    Matrix b = a;
    b(1, 1) = cplx(1.0, 0.5);
    EXPECT_NEAR(a.maxAbsDiff(b), 0.5, 1e-12);
}

TEST(Matrix, AdditionAndScaling)
{
    Matrix a = Matrix::identity(2);
    Matrix b = (a + a) * cplx(2.0);
    EXPECT_EQ(b(0, 0), cplx(4.0));
    a += b;
    EXPECT_EQ(a(1, 1), cplx(5.0));
}

// ---------------------------------------------------- small-buffer SBO

TEST(MatrixSbo, GateSizedMatricesLiveInline)
{
    EXPECT_TRUE(Matrix::identity(1).isInline());
    EXPECT_TRUE(gates::hadamard().isInline());      // 2x2
    EXPECT_TRUE(gates::sycamore().isInline());      // 4x4 == 16 elems
    EXPECT_FALSE(Matrix::identity(5).isInline());   // 25 > 16
    EXPECT_FALSE(Matrix(2, 16).isInline());
}

TEST(MatrixSbo, DataPointsIntoObjectForInlineStorage)
{
    Matrix m = gates::cz();
    const char* lo = reinterpret_cast<const char*>(&m);
    const char* hi = lo + sizeof(Matrix);
    const char* d = reinterpret_cast<const char*>(m.data());
    EXPECT_GE(d, lo);
    EXPECT_LT(d, hi);

    Matrix big = Matrix::identity(8);
    const char* bd = reinterpret_cast<const char*>(big.data());
    EXPECT_TRUE(bd < reinterpret_cast<const char*>(&big) ||
                bd >= reinterpret_cast<const char*>(&big) +
                          sizeof(Matrix));
}

TEST(MatrixSbo, InlineAndHeapRoundTripsAgree)
{
    // The same arithmetic through an inline 4x4 and a heap 5x5
    // embedding must agree on the shared 4x4 corner.
    Matrix small = gates::fsim(0.37, 0.81);
    Matrix big(5, 5);
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j)
            big(i, j) = small(i, j);
    big(4, 4) = 1.0;

    Matrix small_sq = small * small;
    Matrix big_sq = big * big;
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j)
            EXPECT_EQ(big_sq(i, j), small_sq(i, j));
}

TEST(MatrixSbo, CopyAndMoveSemantics)
{
    Matrix inline_src = gates::iswap();
    Matrix copy = inline_src;
    EXPECT_TRUE(copy.isInline());
    EXPECT_EQ(copy.maxAbsDiff(inline_src), 0.0);

    Matrix moved = std::move(copy);
    EXPECT_TRUE(moved.isInline());
    EXPECT_EQ(moved.maxAbsDiff(inline_src), 0.0);

    Matrix heap_src = Matrix::identity(6);
    heap_src(5, 0) = cplx(0.0, 2.0);
    const cplx* heap_buf = heap_src.data();
    Matrix heap_moved = std::move(heap_src);
    // Heap storage transfers by pointer steal.
    EXPECT_EQ(heap_moved.data(), heap_buf);
    EXPECT_EQ(heap_moved(5, 0), cplx(0.0, 2.0));

    // Assignment across storage classes in both directions.
    Matrix m = gates::cnot();
    m = Matrix::identity(7);
    EXPECT_FALSE(m.isInline());
    EXPECT_EQ(m(6, 6), cplx(1.0));
    m = gates::cnot();
    EXPECT_TRUE(m.isInline());
    EXPECT_EQ(m(3, 2), cplx(1.0));

    // Self-assignment keeps contents.
    Matrix& alias = m;
    m = alias;
    EXPECT_EQ(m(3, 2), cplx(1.0));
}

TEST(MatrixSbo, MovedFromMatrixIsReusable)
{
    Matrix a = Matrix::identity(6);
    Matrix b = std::move(a);
    a = gates::pauliX(); // must be safely assignable after the move
    EXPECT_TRUE(a.isInline());
    EXPECT_EQ(a(0, 1), cplx(1.0));
    EXPECT_EQ(b(5, 5), cplx(1.0));
}

TEST(MatrixSbo, MultiplyIntoMatchesOperatorStar)
{
    Matrix a = gates::fsim(1.2, 0.4);
    Matrix b = gates::sqrtIswap();
    Matrix expected = a * b;
    Matrix out;
    Matrix::multiplyInto(out, a, b);
    EXPECT_EQ(out.maxAbsDiff(expected), 0.0);

    // Reuse with a shape already matching (no reallocation path).
    Matrix::multiplyInto(out, b, a);
    EXPECT_EQ(out.maxAbsDiff(b * a), 0.0);

    // Heap-sized product and rectangular shapes.
    Matrix r1(3, 7), r2(7, 2);
    for (size_t i = 0; i < r1.size(); ++i)
        const_cast<cplx*>(r1.data())[i] = cplx(double(i), 0.5);
    for (size_t i = 0; i < r2.size(); ++i)
        const_cast<cplx*>(r2.data())[i] = cplx(0.25, double(i));
    Matrix rect;
    Matrix::multiplyInto(rect, r1, r2);
    EXPECT_EQ(rect.rows(), 3u);
    EXPECT_EQ(rect.cols(), 2u);
    EXPECT_EQ(rect.maxAbsDiff(r1 * r2), 0.0);
}

TEST(MatrixSbo, MultiplyIntoRejectsAliasing)
{
    Matrix a = gates::cz();
    Matrix b = gates::iswap();
    EXPECT_THROW(Matrix::multiplyInto(a, a, b), FatalError);
    EXPECT_THROW(Matrix::multiplyInto(b, a, b), FatalError);
}

} // namespace
} // namespace qiset
