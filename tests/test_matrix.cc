// Unit tests for the dense complex matrix type.

#include <gtest/gtest.h>

#include "common/error.h"
#include "qc/gates.h"
#include "qc/matrix.h"

namespace qiset {
namespace {

TEST(Matrix, IdentityHasUnitDiagonal)
{
    Matrix id = Matrix::identity(4);
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j)
            EXPECT_EQ(id(i, j), (i == j ? cplx(1.0) : cplx(0.0)));
}

TEST(Matrix, InitializerListLayout)
{
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_EQ(m(0, 1), cplx(2.0));
    EXPECT_EQ(m(1, 0), cplx(3.0));
}

TEST(Matrix, MultiplicationMatchesHandComputation)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    Matrix c = a * b;
    EXPECT_EQ(c(0, 0), cplx(19.0));
    EXPECT_EQ(c(0, 1), cplx(22.0));
    EXPECT_EQ(c(1, 0), cplx(43.0));
    EXPECT_EQ(c(1, 1), cplx(50.0));
}

TEST(Matrix, MultiplicationShapeMismatchThrows)
{
    Matrix a(2, 3), b(2, 2);
    EXPECT_THROW(a * b, FatalError);
}

TEST(Matrix, DaggerConjugatesAndTransposes)
{
    Matrix m{{cplx(1.0, 2.0), cplx(3.0, -1.0)},
             {cplx(0.0, 1.0), cplx(2.0, 0.0)}};
    Matrix d = m.dagger();
    EXPECT_EQ(d(0, 0), cplx(1.0, -2.0));
    EXPECT_EQ(d(0, 1), cplx(0.0, -1.0));
    EXPECT_EQ(d(1, 0), cplx(3.0, 1.0));
}

TEST(Matrix, TraceSumsDiagonal)
{
    Matrix m{{cplx(1.0, 1.0), 0.0}, {0.0, cplx(2.0, -3.0)}};
    EXPECT_EQ(m.trace(), cplx(3.0, -2.0));
}

TEST(Matrix, KroneckerProductOfPaulis)
{
    Matrix zz = gates::pauliZ().kron(gates::pauliZ());
    EXPECT_EQ(zz(0, 0), cplx(1.0));
    EXPECT_EQ(zz(1, 1), cplx(-1.0));
    EXPECT_EQ(zz(2, 2), cplx(-1.0));
    EXPECT_EQ(zz(3, 3), cplx(1.0));
    EXPECT_EQ(zz(0, 1), cplx(0.0));
}

TEST(Matrix, KroneckerDimensions)
{
    Matrix a(2, 3), b(4, 5);
    Matrix k = a.kron(b);
    EXPECT_EQ(k.rows(), 8u);
    EXPECT_EQ(k.cols(), 15u);
}

TEST(Matrix, FrobeniusNormOfIdentity)
{
    EXPECT_NEAR(Matrix::identity(4).frobeniusNorm(), 2.0, 1e-12);
}

TEST(Matrix, UnitaryDetection)
{
    EXPECT_TRUE(gates::hadamard().isUnitary());
    EXPECT_TRUE(gates::fsim(0.3, 1.1).isUnitary());
    Matrix not_unitary{{1.0, 1.0}, {0.0, 1.0}};
    EXPECT_FALSE(not_unitary.isUnitary());
}

TEST(Matrix, HermitianDetection)
{
    EXPECT_TRUE(gates::pauliY().isHermitian());
    EXPECT_FALSE(gates::sGate().isHermitian());
}

TEST(Matrix, TraceFidelityIsPhaseInvariant)
{
    Matrix u = gates::fsim(0.7, 0.2);
    Matrix v = u * cplx(std::cos(1.3), std::sin(1.3));
    EXPECT_NEAR(traceFidelity(u, v), 1.0, 1e-12);
}

TEST(Matrix, TraceFidelityDistinguishesGates)
{
    double f = traceFidelity(gates::cz(), gates::iswap());
    EXPECT_LT(f, 0.999);
    EXPECT_GE(f, 0.0);
}

TEST(Matrix, HilbertSchmidtOfIdenticalUnitaries)
{
    Matrix u = gates::sycamore();
    EXPECT_NEAR(std::abs(hilbertSchmidt(u, u)), 4.0, 1e-12);
}

TEST(Matrix, MaxAbsDiff)
{
    Matrix a = Matrix::identity(2);
    Matrix b = a;
    b(1, 1) = cplx(1.0, 0.5);
    EXPECT_NEAR(a.maxAbsDiff(b), 0.5, 1e-12);
}

TEST(Matrix, AdditionAndScaling)
{
    Matrix a = Matrix::identity(2);
    Matrix b = (a + a) * cplx(2.0);
    EXPECT_EQ(b(0, 0), cplx(4.0));
    a += b;
    EXPECT_EQ(a(1, 1), cplx(5.0));
}

} // namespace
} // namespace qiset
