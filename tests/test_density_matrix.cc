// Density-matrix simulator tests: consistency with the state vector,
// channel physics and the noisy-run pipeline.

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "qc/gates.h"
#include "sim/density_matrix.h"
#include "sim/statevector.h"

namespace qiset {
namespace {

using namespace gates;

TEST(DensityMatrix, PureStateProbabilitiesMatchStateVector)
{
    Circuit c(3);
    c.add1q(0, hadamard());
    c.add2q(0, 1, cnot());
    c.add2q(1, 2, fsim(0.5, 0.8));
    c.add1q(2, tGate());

    StateVector sv(3);
    sv.run(c);

    DensityMatrix rho(3);
    for (const auto& op : c.ops())
        rho.applyUnitary(op.unitary(), op.qubits());

    auto p_sv = sv.probabilities();
    auto p_dm = rho.probabilities();
    for (size_t i = 0; i < p_sv.size(); ++i)
        EXPECT_NEAR(p_sv[i], p_dm[i], 1e-10);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
}

TEST(DensityMatrix, ConstructFromStateVector)
{
    StateVector sv(2);
    sv.apply1q(hadamard(), 0);
    DensityMatrix rho(sv);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.fidelityWithPure(sv), 1.0, 1e-12);
}

TEST(DensityMatrix, DepolarizingReducesPurity)
{
    DensityMatrix rho(2);
    rho.applyUnitary(hadamard(), {0});
    rho.applyUnitary(cnot(), {0, 1});
    double purity_before = rho.purity();
    rho.applyKraus(NoiseModel::depolarizingKraus2q(0.1), {0, 1});
    EXPECT_LT(rho.purity(), purity_before);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixed)
{
    DensityMatrix rho(1);
    // p = 3/4 is the fully-depolarizing point of the 1Q channel.
    rho.applyKraus(NoiseModel::depolarizingKraus1q(0.75), {0});
    auto probs = rho.probabilities();
    EXPECT_NEAR(probs[0], 0.5, 1e-10);
    EXPECT_NEAR(probs[1], 0.5, 1e-10);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-10);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix rho(1);
    rho.applyUnitary(pauliX(), {0}); // |1>
    double t1 = 15e3;
    double duration = 5e3;
    rho.applyKraus(NoiseModel::thermalKraus(t1, t1, duration), {0});
    double expected_p1 = std::exp(-duration / t1);
    EXPECT_NEAR(rho.probabilities()[1], expected_p1, 1e-9);
}

TEST(DensityMatrix, DephasingKillsCoherence)
{
    DensityMatrix rho(1);
    rho.applyUnitary(hadamard(), {0});
    double t1 = 1e9; // effectively no amplitude damping
    double t2 = 10e3;
    double duration = 7e3;
    rho.applyKraus(NoiseModel::thermalKraus(t1, t2, duration), {0});
    // Off-diagonal element decays as exp(-t/T2).
    double coherence = std::abs(rho.element(0, 1));
    EXPECT_NEAR(coherence, 0.5 * std::exp(-duration / t2), 1e-6);
    // Populations essentially untouched (T1 is finite but huge).
    EXPECT_NEAR(rho.probabilities()[0], 0.5, 1e-5);
}

TEST(DensityMatrix, RunNoisyMatchesManualChannelApplication)
{
    Circuit c(2);
    c.add1q(0, hadamard(), "H");
    Operation op;
    op.qubits = {0, 1};
    op.unitary = cnot();
    op.error_rate = 0.05;
    op.duration_ns = 100.0;
    c.add(op);

    QubitNoise qn;
    qn.t1_ns = 20e3;
    qn.t2_ns = 20e3;
    NoiseModel noise(2, qn);

    DensityMatrix via_run(2);
    via_run.runNoisy(c, noise);

    DensityMatrix manual(2);
    manual.applyUnitary(hadamard(), {0});
    manual.applyUnitary(cnot(), {0, 1});
    manual.applyKraus(NoiseModel::depolarizingKraus2q(0.05), {0, 1});
    manual.applyKraus(NoiseModel::thermalKraus(20e3, 20e3, 100.0), {0});
    manual.applyKraus(NoiseModel::thermalKraus(20e3, 20e3, 100.0), {1});

    auto p1 = via_run.probabilities();
    auto p2 = manual.probabilities();
    for (size_t i = 0; i < p1.size(); ++i)
        EXPECT_NEAR(p1[i], p2[i], 1e-10);
}

TEST(DensityMatrix, FidelityWithPureDropsUnderNoise)
{
    Circuit c(2);
    c.add1q(0, hadamard());
    c.add2q(0, 1, cnot());

    StateVector ideal(2);
    ideal.run(c);

    DensityMatrix rho(2);
    for (const auto& op : c.ops())
        rho.applyUnitary(op.unitary(), op.qubits());
    EXPECT_NEAR(rho.fidelityWithPure(ideal), 1.0, 1e-10);

    rho.applyKraus(NoiseModel::depolarizingKraus2q(0.2), {0, 1});
    double f = rho.fidelityWithPure(ideal);
    EXPECT_LT(f, 0.95);
    EXPECT_GT(f, 0.5);
}

class DepolarizingClosedForm : public ::testing::TestWithParam<double>
{
};

TEST_P(DepolarizingClosedForm, MatchesKrausChannel1q)
{
    double p = GetParam();
    DensityMatrix a(3), b(3);
    for (DensityMatrix* rho : {&a, &b}) {
        rho->applyUnitary(hadamard(), {0});
        rho->applyUnitary(cnot(), {0, 1});
        rho->applyUnitary(fsim(0.4, 0.9), {1, 2});
    }
    a.applyDepolarizing(p, {1});
    b.applyKraus(NoiseModel::depolarizingKraus1q(p), {1});
    for (size_t r = 0; r < a.dim(); ++r)
        for (size_t c = 0; c < a.dim(); ++c)
            EXPECT_NEAR(std::abs(a.element(r, c) - b.element(r, c)),
                        0.0, 1e-12);
}

TEST_P(DepolarizingClosedForm, MatchesKrausChannel2q)
{
    double p = GetParam();
    DensityMatrix a(3), b(3);
    for (DensityMatrix* rho : {&a, &b}) {
        rho->applyUnitary(hadamard(), {2});
        rho->applyUnitary(iswap(), {2, 0});
    }
    a.applyDepolarizing(p, {0, 2});
    b.applyKraus(NoiseModel::depolarizingKraus2q(p), {0, 2});
    for (size_t r = 0; r < a.dim(); ++r)
        for (size_t c = 0; c < a.dim(); ++c)
            EXPECT_NEAR(std::abs(a.element(r, c) - b.element(r, c)),
                        0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, DepolarizingClosedForm,
                         ::testing::Values(0.0, 0.0062, 0.05, 0.25));

TEST(DensityMatrix, KrausOnSecondQubitOnly)
{
    DensityMatrix rho(2);
    rho.applyUnitary(pauliX(), {1}); // |01>
    rho.applyKraus(NoiseModel::thermalKraus(1e3, 1e3, 1e3), {1});
    auto probs = rho.probabilities();
    // Qubit 1 decays toward |0>, qubit 0 untouched.
    EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-10);
    EXPECT_GT(probs[0], 0.5);
}

} // namespace
} // namespace qiset
