// IR bit-identity goldens across the struct-of-arrays refactor.
//
// The hashes below were captured from the array-of-structs IR
// (pre-SoA seed) on seeded QFT/QV/QAOA workloads: schedule structure
// fingerprints, full circuit content (qubits, labels, annotations,
// unitary entries), and complete CompileResult state after the serial
// pipeline. Any representation change that alters what a pass reads
// or emits — operand packing, label interning, column ordering —
// shows up here as a hash mismatch.

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "circuit/circuit.h"
#include "circuit/draw.h"
#include "circuit/label_table.h"
#include "circuit/schedule.h"
#include "common/rng.h"
#include "compiler/pipeline.h"
#include "device/device.h"
#include "isa/gate_set.h"
#include "qc/gates.h"

namespace qiset {
namespace {

uint64_t
fnv1a(uint64_t hash, uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xffu;
        hash *= 1099511628211ull;
    }
    return hash;
}

uint64_t
fnvDouble(uint64_t hash, double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a(hash, bits);
}

uint64_t
fnvString(uint64_t hash, const std::string& s)
{
    hash = fnv1a(hash, s.size());
    for (char c : s)
        hash = fnv1a(hash, static_cast<uint64_t>(
                               static_cast<unsigned char>(c)));
    return hash;
}

/** Every per-op field, label resolved to text (interning-agnostic). */
uint64_t
circuitContentHash(const Circuit& circuit)
{
    uint64_t hash = 14695981039346656037ull;
    hash = fnv1a(hash, static_cast<uint64_t>(circuit.numQubits()));
    hash = fnv1a(hash, circuit.size());
    for (const auto& op : circuit.ops()) {
        hash = fnv1a(hash, op.qubits().size());
        for (int q : op.qubits())
            hash = fnv1a(hash, static_cast<uint64_t>(q));
        hash = fnvString(hash, op.label());
        hash = fnvDouble(hash, op.errorRate());
        hash = fnvDouble(hash, op.durationNs());
        for (size_t r = 0; r < op.unitary().rows(); ++r)
            for (size_t c = 0; c < op.unitary().cols(); ++c) {
                hash = fnvDouble(hash, op.unitary()(r, c).real());
                hash = fnvDouble(hash, op.unitary()(r, c).imag());
            }
    }
    return hash;
}

uint64_t
resultHash(const CompileResult& result)
{
    uint64_t hash = circuitContentHash(result.circuit);
    for (int p : result.physical)
        hash = fnv1a(hash, static_cast<uint64_t>(p));
    for (int p : result.initial_positions)
        hash = fnv1a(hash, static_cast<uint64_t>(p));
    for (int p : result.final_positions)
        hash = fnv1a(hash, static_cast<uint64_t>(p));
    hash = fnv1a(hash, static_cast<uint64_t>(result.swaps_inserted));
    hash = fnv1a(hash, static_cast<uint64_t>(result.two_qubit_count));
    hash = fnvDouble(hash, result.estimated_fidelity);
    return hash;
}

CompileOptions
goldenOptions()
{
    CompileOptions options;
    options.approximate = true;
    options.nuop.max_layers = 5;
    options.nuop.multistarts = 3;
    options.nuop.exact_threshold = 1.0 - 1e-6;
    options.nuop.bfgs.max_iterations = 150;
    return options;
}

struct GoldenCase
{
    const char* name;
    uint64_t logical_schedule_fp;
    uint64_t logical_content;
    uint64_t compiled_schedule_fp;
    uint64_t result;
};

// Captured from the pre-SoA IR; must never drift.
const GoldenCase kGolden[] = {
    {"qft8", 0xf0ff1cf8245b5dc9ull, 0x211ab8e9f52817fdull,
     0x19aed16609bca67ull, 0x9e9ccaeb8e4b924dull},
    {"qv8", 0x94dd8c67404ed48dull, 0x603873239e790373ull,
     0x8aa4aa8692c02e03ull, 0x304295ba38d4c6acull},
    {"qaoa8", 0x713bdf23698720f9ull, 0x9aa86b83dfde5659ull,
     0xbf9a29b8ac0594daull, 0xb5328c76d174fde6ull},
};

Circuit
goldenApp(const std::string& name)
{
    if (name == "qft8")
        return makeQftCircuit(8);
    if (name == "qv8") {
        Rng rng(77);
        return makeQuantumVolumeCircuit(8, rng);
    }
    Rng rng(123);
    return makeRandomQaoaCircuit(8, rng);
}

TEST(IrIdentity, GeneratorsAndPipelineMatchPreSoaGoldens)
{
    Rng dev_rng(4242);
    Device device = makeSycamore(dev_rng);
    GateSet set = isa::singleTypeSet(3); // CZ
    CompileOptions options = goldenOptions();

    for (const GoldenCase& golden : kGolden) {
        Circuit app = goldenApp(golden.name);
        EXPECT_EQ(Schedule(app).fingerprint(),
                  golden.logical_schedule_fp)
            << golden.name << " logical schedule";
        EXPECT_EQ(circuitContentHash(app), golden.logical_content)
            << golden.name << " logical content";

        ProfileCache cache;
        CompileResult result =
            compileCircuit(app, device, set, cache, options);
        EXPECT_EQ(Schedule(result.circuit).fingerprint(),
                  golden.compiled_schedule_fp)
            << golden.name << " compiled schedule";
        EXPECT_EQ(resultHash(result), golden.result)
            << golden.name << " compile result";
    }
}

TEST(IrIdentity, RenderedTextMatchesPreSoaGoldens)
{
    // Label interning must round-trip through the renderers without
    // changing a byte of output.
    Circuit qft4 = makeQftCircuit(4);
    EXPECT_EQ(fnvString(14695981039346656037ull, drawCircuit(qft4)),
              0x1b4e7722cbdd78cdull);
    EXPECT_EQ(fnvString(14695981039346656037ull, qft4.toString()),
              0x6ed0bf2c3f23620dull);
}

TEST(LabelTable, InternRoundTripsAndDedupes)
{
    LabelTable& table = LabelTable::global();
    LabelId a = table.intern("fSim(1.571,0.524)");
    LabelId b = table.intern("fSim(1.571,0.524)");
    EXPECT_EQ(a, b);
    EXPECT_EQ(table.name(a), "fSim(1.571,0.524)");
    EXPECT_EQ(table.find("fSim(1.571,0.524)"), a);

    LabelId c = table.intern("fSim(1.571,0.525)");
    EXPECT_NE(a, c);
    EXPECT_EQ(table.find("never-interned-label-xyzzy"), kInvalidLabel);
}

TEST(LabelTable, CircuitLabelsResolveToIdenticalText)
{
    // add1q/add2q intern; ops render the exact original text, and ops
    // sharing text share the id (cross-circuit, one global table).
    Circuit a(2), b(2);
    a.add2q(0, 1, gates::cz(), "CZ-label-roundtrip");
    b.add2q(1, 0, gates::cz(), "CZ-label-roundtrip");
    EXPECT_EQ(a.ops()[0].label(), "CZ-label-roundtrip");
    EXPECT_EQ(a.ops()[0].labelId(), b.ops()[0].labelId());
    EXPECT_EQ(a.countLabel("CZ-label-roundtrip"), 1);
    EXPECT_EQ(a.countLabel("no-such-label-anywhere"), 0);

    // The drawn diagram carries the interned text verbatim.
    EXPECT_NE(drawCircuit(a).find("CZ-label-roundtrip"),
              std::string::npos);
}

} // namespace
} // namespace qiset
