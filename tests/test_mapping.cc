// Qubit-mapping pass tests.

#include <algorithm>

#include <gtest/gtest.h>

#include "common/error.h"
#include "compiler/mapping.h"

namespace qiset {
namespace {

Device
toyDevice()
{
    Device d("toy", Topology::line(5));
    // Edge fidelities ramp upward: best edge is (3, 4).
    d.setEdgeFidelity(0, 1, "S3", 0.90);
    d.setEdgeFidelity(1, 2, "S3", 0.92);
    d.setEdgeFidelity(2, 3, "S3", 0.94);
    d.setEdgeFidelity(3, 4, "S3", 0.99);
    return d;
}

TEST(Mapping, FidelityKeysIncludeFamilies)
{
    auto keys = fidelityKeys(isa::fullXy());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "XY"), keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "S3"), keys.end());

    keys = fidelityKeys(isa::fullFsim());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "fSim"), keys.end());

    keys = fidelityKeys(isa::googleSet(2));
    EXPECT_EQ(keys.size(), 3u);
}

TEST(Mapping, BestEdgeFidelityTakesMaxOverTypes)
{
    Device d("toy", Topology::line(2));
    d.setEdgeFidelity(0, 1, "S3", 0.86);
    d.setEdgeFidelity(0, 1, "S4", 0.95);
    GateSet set = isa::rigettiSet(1); // {S3, S4}
    EXPECT_NEAR(bestEdgeFidelity(d, 0, 1, set), 0.95, 1e-12);
}

TEST(Mapping, SeedsOnBestEdge)
{
    Device d = toyDevice();
    GateSet set = isa::singleTypeSet(3); // CZ only
    auto mapping = chooseMapping(d, 2, set);
    std::sort(mapping.begin(), mapping.end());
    EXPECT_EQ(mapping[0], 3);
    EXPECT_EQ(mapping[1], 4);
}

TEST(Mapping, SubgraphIsConnected)
{
    Rng rng(5);
    Device d = makeSycamore(rng);
    GateSet set = isa::googleSet(3);
    for (int n : {2, 4, 6, 10}) {
        auto mapping = chooseMapping(d, n, set);
        EXPECT_EQ(static_cast<int>(mapping.size()), n);
        Topology sub = d.topology().inducedSubgraph(mapping);
        EXPECT_TRUE(sub.connected()) << "n=" << n;
    }
}

TEST(Mapping, NoDuplicatePhysicalQubits)
{
    Rng rng(6);
    Device d = makeAspen8(rng);
    auto mapping = chooseMapping(d, 8, isa::rigettiSet(3));
    std::sort(mapping.begin(), mapping.end());
    EXPECT_EQ(std::adjacent_find(mapping.begin(), mapping.end()),
              mapping.end());
}

TEST(Mapping, RejectsOversizedCircuits)
{
    Device d = toyDevice();
    EXPECT_THROW(chooseMapping(d, 6, isa::singleTypeSet(3)), FatalError);
}

TEST(Mapping, SingleQubitCircuit)
{
    Device d = toyDevice();
    auto mapping = chooseMapping(d, 1, isa::singleTypeSet(3));
    EXPECT_EQ(mapping.size(), 1u);
}

} // namespace
} // namespace qiset
