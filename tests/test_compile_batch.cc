// Batch compilation tests: serial/parallel equivalence, cache sharing
// across a batch, and warm-start from a persisted cache.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/qaoa.h"
#include "apps/qft.h"
#include "compiler/pipeline.h"

namespace qiset {
namespace {

CompileOptions
fastCompile()
{
    CompileOptions opts;
    opts.nuop.max_layers = 4;
    opts.nuop.multistarts = 3;
    opts.nuop.exact_threshold = 1.0 - 1e-6;
    return opts;
}

Device
lineDevice(int n)
{
    Device d("line", Topology::line(n));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", 0.995);
        d.setEdgeFidelity(a, b, "S4", 0.99);
    }
    for (int q = 0; q < n; ++q)
        d.setOneQubitError(q, 0.0005);
    return d;
}

/** Workload of >= 8 small circuits with overlapping 2Q unitaries. */
std::vector<Circuit>
makeWorkload()
{
    std::vector<Circuit> apps;
    Rng rng(301);
    for (int i = 0; i < 6; ++i)
        apps.push_back(makeRandomQaoaCircuit(3, rng));
    apps.push_back(makeQftCircuit(3));
    apps.push_back(makeQftCircuit(3)); // duplicate: pure cache reuse
    return apps;
}

void
expectIdentical(const CompileResult& a, const CompileResult& b)
{
    EXPECT_EQ(a.physical, b.physical);
    EXPECT_EQ(a.final_positions, b.final_positions);
    EXPECT_EQ(a.swaps_inserted, b.swaps_inserted);
    EXPECT_EQ(a.two_qubit_count, b.two_qubit_count);
    EXPECT_EQ(a.type_usage, b.type_usage);
    EXPECT_DOUBLE_EQ(a.estimated_fidelity, b.estimated_fidelity);
    ASSERT_EQ(a.circuit.size(), b.circuit.size());
    for (size_t i = 0; i < a.circuit.size(); ++i) {
        ConstOpRef x = a.circuit.ops()[i];
        ConstOpRef y = b.circuit.ops()[i];
        EXPECT_EQ(x.qubits(), y.qubits());
        EXPECT_EQ(x.labelId(), y.labelId());
        EXPECT_DOUBLE_EQ(x.errorRate(), y.errorRate());
        EXPECT_EQ(x.unitary().maxAbsDiff(y.unitary()), 0.0);
    }
}

TEST(CompileBatch, MatchesSerialCompileExactly)
{
    Device d = lineDevice(3);
    GateSet set = isa::rigettiSet(1);
    CompileOptions opts = fastCompile();
    std::vector<Circuit> apps = makeWorkload();
    ASSERT_GE(apps.size(), 8u);

    // Serial reference: one compile() per circuit, its own cache.
    ProfileCache serial_cache;
    std::vector<CompileResult> serial;
    for (const auto& app : apps)
        serial.push_back(
            compileCircuit(app, d, set, serial_cache, opts));

    // Parallel batch over a shared cache.
    ProfileCache batch_cache;
    ThreadPool pool(4);
    std::vector<CompileResult> batch =
        compileBatch(apps, d, set, batch_cache, opts, &pool);

    ASSERT_EQ(batch.size(), serial.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        SCOPED_TRACE("circuit " + std::to_string(i));
        expectIdentical(serial[i], batch[i]);
    }

    // Re-running the batch against the now-warm shared cache is pure
    // hits and still identical.
    batch_cache.resetStats();
    std::vector<CompileResult> warm =
        compileBatch(apps, d, set, batch_cache, opts, &pool);
    ProfileCacheStats stats = batch_cache.stats();
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_GT(stats.hits, 0u);
    for (size_t i = 0; i < warm.size(); ++i) {
        SCOPED_TRACE("warm circuit " + std::to_string(i));
        expectIdentical(serial[i], warm[i]);
    }
}

TEST(CompileBatch, SharesProfilesAcrossTheBatch)
{
    Device d = lineDevice(3);
    GateSet set = isa::rigettiSet(1);
    CompileOptions opts = fastCompile();
    std::vector<Circuit> apps = makeWorkload();

    // Compiling each circuit with its own cold cache repeats BFGS work
    // for every unitary shared between circuits; the shared batch
    // cache must do strictly fewer optimizations.
    uint64_t isolated_misses = 0;
    for (const auto& app : apps) {
        ProfileCache isolated;
        compileCircuit(app, d, set, isolated, opts);
        isolated_misses += isolated.stats().misses;
    }

    ProfileCache shared;
    ThreadPool pool(4);
    compileBatch(apps, d, set, shared, opts, &pool);
    EXPECT_LT(shared.stats().misses, isolated_misses);
    EXPECT_GT(shared.stats().hits, 0u);
}

TEST(CompileBatch, PersistedCacheSkipsAllBfgs)
{
    Device d = lineDevice(3);
    GateSet set = isa::rigettiSet(1);
    CompileOptions opts = fastCompile();
    std::vector<Circuit> apps = makeWorkload();

    std::string path =
        std::string(::testing::TempDir()) + "qiset_batch_cache.txt";

    // First run: compile everything, persist the cache.
    ProfileCache first_cache;
    std::vector<CompileResult> first =
        compileBatch(apps, d, set, first_cache, opts);
    EXPECT_GT(first_cache.stats().misses, 0u);
    ASSERT_TRUE(first_cache.save(path, opts.nuop));

    // Second process run (simulated by a fresh cache): loading the
    // persisted profiles means zero new BFGS optimizations.
    ProfileCache second_cache;
    ASSERT_TRUE(second_cache.load(path, opts.nuop));
    ThreadPool pool(4);
    std::vector<CompileResult> second =
        compileBatch(apps, d, set, second_cache, opts, &pool);

    ProfileCacheStats stats = second_cache.stats();
    EXPECT_EQ(stats.misses, 0u) << "persisted cache must cover the run";
    EXPECT_GT(stats.hits, 0u);
    for (size_t i = 0; i < second.size(); ++i) {
        SCOPED_TRACE("circuit " + std::to_string(i));
        expectIdentical(first[i], second[i]);
    }
    std::remove(path.c_str());
}

TEST(CompileBatch, EmptyAndSerialFallback)
{
    Device d = lineDevice(3);
    GateSet set = isa::rigettiSet(1);
    CompileOptions opts = fastCompile();
    ProfileCache cache;

    EXPECT_TRUE(compileBatch({}, d, set, cache, opts).empty());

    // No pool: serial path, same results as compileCircuit.
    Rng rng(302);
    std::vector<Circuit> apps = {makeRandomQaoaCircuit(3, rng)};
    std::vector<CompileResult> batch =
        compileBatch(apps, d, set, cache, opts);
    ASSERT_EQ(batch.size(), 1u);
    ProfileCache reference_cache;
    CompileResult reference =
        compileCircuit(apps[0], d, set, reference_cache, opts);
    expectIdentical(reference, batch[0]);
}

} // namespace
} // namespace qiset
