// Tests for the bench table formatter.

#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/table.h"

namespace qiset {
namespace {

TEST(Table, RendersHeaderAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, ColumnsAreAligned)
{
    Table t({"a", "b"});
    t.addRow({"xxxxxx", "1"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    // Header line must be padded to the widest cell + separator.
    auto first_newline = out.find('\n');
    ASSERT_NE(first_newline, std::string::npos);
    EXPECT_GE(first_newline, std::string("xxxxxx  b").size());
}

TEST(Table, RejectsWrongArity)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, RejectsEmptyHeader)
{
    EXPECT_THROW(Table({}), FatalError);
}

TEST(FmtDouble, FixedPrecision)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(-0.5, 1), "-0.5");
}

TEST(FmtSci, ScientificNotation)
{
    std::string s = fmtSci(12345.0, 2);
    EXPECT_NE(s.find("e+04"), std::string::npos);
}

} // namespace
} // namespace qiset
