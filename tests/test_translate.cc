// NuOp translation pass tests: profiles, selection and emission.

#include <gtest/gtest.h>

#include "apps/qv.h"
#include "common/error.h"
#include "compiler/translate.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

NuOpOptions
fastNuOp()
{
    NuOpOptions opts;
    opts.max_layers = 4;
    opts.multistarts = 3;
    opts.exact_threshold = 1.0 - 1e-6;
    return opts;
}

Device
twoQubitDevice(double cz_fid, double iswap_fid)
{
    Device d("pair", Topology::line(2));
    d.setEdgeFidelity(0, 1, "S3", cz_fid);
    d.setEdgeFidelity(0, 1, "S4", iswap_fid);
    d.setOneQubitError(0, 0.001);
    d.setOneQubitError(1, 0.001);
    return d;
}

TEST(ProfileCache, MemoizesAcrossCalls)
{
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    GateSpec spec;
    spec.type_name = "S3";
    spec.unitary = cz();

    auto a = cache.get(zz(0.3), spec, decomposer);
    EXPECT_EQ(cache.size(), 1u);
    auto b = cache.get(zz(0.3), spec, decomposer);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(a.get(), b.get());
    // Different target: new entry.
    cache.get(zz(0.4), spec, decomposer);
    EXPECT_EQ(cache.size(), 2u);
    // The counters saw one hit and two computed profiles.
    ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
}

TEST(ProfileCache, FitsStopAtExactThreshold)
{
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    GateSpec spec;
    spec.type_name = "S3";
    spec.unitary = cz();
    auto profile = cache.get(zz(0.3), spec, decomposer);
    // ZZ with CZ is exact at 2 layers: fits = depths 0, 1, 2.
    ASSERT_EQ(profile->fits.size(), 3u);
    EXPECT_GE(profile->fits.back().fd, 1.0 - 1e-6);
    EXPECT_LT(profile->fits[1].fd, 1.0 - 1e-6);
}

TEST(SelectGate, PrefersHigherOverallFidelity)
{
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    GateSpec cz_spec{"S3", TemplateFamily::Fixed, cz()};
    GateSpec isw_spec{"S4", TemplateFamily::Fixed, iswap()};
    Matrix target = zz(0.5);
    auto cz_profile = cache.get(target, cz_spec, decomposer);
    auto isw_profile = cache.get(target, isw_spec, decomposer);
    std::vector<const GateProfile*> profiles = {cz_profile.get(),
                                                isw_profile.get()};

    GateChoice pick_cz = selectGate(profiles, {0.99, 0.90}, 1.0, true,
                                    1.0 - 1e-6);
    EXPECT_EQ(pick_cz.profile->type_name, "S3");
    GateChoice pick_isw = selectGate(profiles, {0.90, 0.99}, 1.0, true,
                                     1.0 - 1e-6);
    EXPECT_EQ(pick_isw.profile->type_name, "S4");
}

TEST(SelectGate, SkipsUncalibratedTypes)
{
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    GateSpec cz_spec{"S3", TemplateFamily::Fixed, cz()};
    GateSpec isw_spec{"S4", TemplateFamily::Fixed, iswap()};
    Matrix target = zz(0.5);
    auto cz_profile = cache.get(target, cz_spec, decomposer);
    auto isw_profile = cache.get(target, isw_spec, decomposer);
    std::vector<const GateProfile*> profiles = {cz_profile.get(),
                                                isw_profile.get()};
    GateChoice choice =
        selectGate(profiles, {0.0, 0.92}, 1.0, true, 1.0 - 1e-6);
    EXPECT_EQ(choice.profile->type_name, "S4");
}

TEST(SelectGate, BreaksExactTiesDeterministically)
{
    // Two gate types with bit-identical fit ladders and equal edge
    // fidelities: the selection must not depend on the order the
    // profiles are supplied in — fewer layers wins, then the
    // lexicographically smaller type name.
    GateProfile a;
    a.type_name = "S3";
    a.fits.push_back(LayerFit{2, 0.999, {}});
    a.fits.push_back(LayerFit{3, 0.999, {}});
    GateProfile b = a;
    b.type_name = "S4";

    GateChoice forward =
        selectGate({&a, &b}, {0.95, 0.95}, 1.0, true, 1.0 - 1e-6);
    GateChoice reversed =
        selectGate({&b, &a}, {0.95, 0.95}, 1.0, true, 1.0 - 1e-6);
    EXPECT_EQ(forward.profile->type_name, "S3");
    EXPECT_EQ(reversed.profile->type_name, "S3");
    EXPECT_EQ(forward.fit->layers, 2); // equal Fu would need equal Fh
    EXPECT_EQ(reversed.fit->layers, 2);

    // Within one profile, an exactly tied Fu prefers the shallower
    // fit even when the deeper one is listed first.
    GateProfile c;
    c.type_name = "S3";
    c.fits.push_back(LayerFit{3, 0.5, {}});
    c.fits.push_back(LayerFit{2, 0.5, {}});
    GateChoice depth = selectGate({&c}, {1.0}, 1.0, true, 1.0 - 1e-6);
    EXPECT_EQ(depth.fit->layers, 2);
}

TEST(Translate, EmittedCircuitImplementsTarget)
{
    Device d = twoQubitDevice(0.99, 0.98);
    GateSet set = isa::rigettiSet(1); // {CZ, iSWAP}
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;

    Rng rng(71);
    Circuit logical(2);
    logical.add2q(0, 1, randomSu4(rng), "SU4");

    TranslateResult result =
        translateCircuit(logical, {0, 1}, d, set, decomposer, cache,
                         /*approximate=*/false);

    // Exact mode: compiled block must equal the target up to phase.
    Matrix compiled = result.circuit.unitary();
    Matrix target = logical.unitary();
    EXPECT_NEAR(traceFidelity(compiled, target), 1.0, 1e-5);
    EXPECT_EQ(result.two_qubit_count, 3);
}

TEST(Translate, AnnotatesErrorRatesAndDurations)
{
    Device d = twoQubitDevice(0.95, 0.0);
    GateSet set = isa::singleTypeSet(3);
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;

    Circuit logical(2);
    logical.add2q(0, 1, zz(0.4), "ZZ");
    TranslateResult result = translateCircuit(
        logical, {0, 1}, d, set, decomposer, cache, true);

    for (const auto& op : result.circuit.ops()) {
        EXPECT_GT(op.durationNs(), 0.0) << op.label();
        if (op.isTwoQubit())
            EXPECT_NEAR(op.errorRate(), 0.05, 1e-9);
        else
            EXPECT_NEAR(op.errorRate(), 0.001, 1e-9);
    }
}

TEST(Translate, NoiseAdaptiveAcrossEdges)
{
    // Three-qubit line: edge (0,1) has good CZ, edge (1,2) good iSWAP.
    Device d("line3", Topology::line(3));
    d.setEdgeFidelity(0, 1, "S3", 0.99);
    d.setEdgeFidelity(0, 1, "S4", 0.90);
    d.setEdgeFidelity(1, 2, "S3", 0.90);
    d.setEdgeFidelity(1, 2, "S4", 0.99);
    for (int q = 0; q < 3; ++q)
        d.setOneQubitError(q, 0.001);

    GateSet set = isa::rigettiSet(1);
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;

    Circuit logical(3);
    logical.add2q(0, 1, zz(0.5), "ZZ");
    logical.add2q(1, 2, zz(0.5), "ZZ");
    TranslateResult result = translateCircuit(
        logical, {0, 1, 2}, d, set, decomposer, cache, true);

    // The same application unitary must compile to different gate
    // types on the two edges (the Fig. 5 scenario).
    std::string first_type, second_type;
    for (const auto& op : result.circuit.ops()) {
        if (!op.isTwoQubit())
            continue;
        if (op.qubits()[0] == 0 || op.qubits()[1] == 0)
            first_type = op.label();
        else
            second_type = op.label();
    }
    EXPECT_EQ(first_type, "S3");
    EXPECT_EQ(second_type, "S4");
}

TEST(Translate, ContinuousFamilyEmissionIsExact)
{
    // FullfSim templates optimize the two-qubit angles too; the
    // emitted per-layer fSim gates + U3s must reproduce the target.
    Device d("pair", Topology::line(2));
    d.setEdgeFidelity(0, 1, "fSim", 0.995);
    GateSet set = isa::fullFsim();
    NuOpOptions opts = fastNuOp();
    opts.multistarts = 6;
    NuOpDecomposer decomposer(opts);
    ProfileCache cache;

    Rng rng(72);
    Circuit logical(2);
    logical.add2q(0, 1, randomSu4(rng), "SU4");
    TranslateResult result = translateCircuit(
        logical, {0, 1}, d, set, decomposer, cache,
        /*approximate=*/false);
    EXPECT_NEAR(
        traceFidelity(result.circuit.unitary(), logical.unitary()),
        1.0, 1e-5);
    for (const auto& [type, count] : result.type_usage)
        EXPECT_EQ(type, "fSim");
}

TEST(Translate, ThrowsWhenNoTypeCalibratedOnEdge)
{
    // Failure injection: the edge has no calibrated member of the
    // instruction set at all.
    Device d("pair", Topology::line(2));
    d.setEdgeFidelity(0, 1, "S1", 0.99); // SYC only
    GateSet set = isa::singleTypeSet(3);  // wants CZ
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    Circuit logical(2);
    logical.add2q(0, 1, zz(0.4), "ZZ");
    EXPECT_THROW(translateCircuit(logical, {0, 1}, d, set, decomposer,
                                  cache, true),
                 FatalError);
}

TEST(Translate, SwapTypeUsedForRoutedSwaps)
{
    // A consolidated SWAP block on a G7-style edge should compile to
    // the native SWAP in one gate.
    Device d("pair", Topology::line(2));
    d.setEdgeFidelity(0, 1, "S3", 0.99);
    d.setEdgeFidelity(0, 1, "SWAP", 0.99);
    GateSet set;
    set.name = "toy";
    set.types = {isa::s3(), isa::swapType()};
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;
    Circuit logical(2);
    logical.add2q(0, 1, gates::swap(), "SWAP");
    TranslateResult result = translateCircuit(
        logical, {0, 1}, d, set, decomposer, cache, true);
    EXPECT_EQ(result.two_qubit_count, 1);
    EXPECT_EQ(result.type_usage.at("SWAP"), 1);
}

TEST(Translate, ParallelProfileWarmupBitIdenticalToSerial)
{
    // The intra-circuit fan-out only parallelizes the profile
    // precompute; selection and emission stay serial. Whatever the
    // thread count or cap, the emitted circuit must be bit-identical
    // — each variant runs against its own cold cache so identity is
    // established by recomputation, not by sharing profile objects.
    Device d("line4", Topology::line(4));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", 0.99);
        d.setEdgeFidelity(a, b, "S4", 0.98);
    }
    for (int q = 0; q < 4; ++q)
        d.setOneQubitError(q, 0.001);
    GateSet set = isa::rigettiSet(1);
    NuOpDecomposer decomposer(fastNuOp());

    Rng rng(73);
    Circuit logical(4);
    logical.add2q(0, 1, randomSu4(rng), "SU4");
    logical.add1q(2, hadamard(), "H");
    logical.add2q(1, 2, zz(0.3), "ZZ");
    logical.add2q(2, 3, randomSu4(rng), "SU4");
    logical.add2q(0, 1, zz(0.3), "ZZ"); // repeat: cache-hit path
    logical.add2q(1, 2, randomSu4(rng), "SU4");

    auto translate = [&](ThreadPool* pool, size_t cap) {
        ProfileCache cold;
        return translateCircuit(logical, {0, 1, 2, 3}, d, set,
                                decomposer, cold, /*approximate=*/true,
                                pool, cap);
    };

    TranslateResult serial = translate(nullptr, 0);
    ThreadPool pool(4);
    TranslateResult uncapped = translate(&pool, 0);
    TranslateResult capped = translate(&pool, 2);
    TranslateResult forced_serial = translate(&pool, 1);

    for (const TranslateResult* other :
         {&uncapped, &capped, &forced_serial}) {
        EXPECT_EQ(serial.two_qubit_count, other->two_qubit_count);
        EXPECT_EQ(serial.type_usage, other->type_usage);
        EXPECT_DOUBLE_EQ(serial.estimated_fidelity,
                         other->estimated_fidelity);
        ASSERT_EQ(serial.circuit.size(), other->circuit.size());
        for (size_t i = 0; i < serial.circuit.size(); ++i) {
            ConstOpRef x = serial.circuit.ops()[i];
            ConstOpRef y = other->circuit.ops()[i];
            EXPECT_EQ(x.qubits(), y.qubits());
            EXPECT_EQ(x.labelId(), y.labelId());
            EXPECT_EQ(x.unitary().maxAbsDiff(y.unitary()), 0.0);
        }
    }
    // Every (op, spec) precompute job tallies exactly one hit or
    // miss. The split is timing-dependent under concurrency (racing
    // same-key requesters both compute and both count as misses, by
    // ProfileCache design), but the total is exact.
    EXPECT_EQ(serial.cache_hits + serial.cache_misses,
              uncapped.cache_hits + uncapped.cache_misses);
    EXPECT_EQ(serial.cache_hits, forced_serial.cache_hits);
    EXPECT_EQ(serial.cache_misses, forced_serial.cache_misses);
}

TEST(Translate, TypeUsageAccounting)
{
    Device d = twoQubitDevice(0.99, 0.99);
    GateSet set = isa::singleTypeSet(3);
    NuOpDecomposer decomposer(fastNuOp());
    ProfileCache cache;

    Circuit logical(2);
    logical.add2q(0, 1, zz(0.3), "ZZ");
    logical.add2q(0, 1, zz(0.7), "ZZ");
    TranslateResult result = translateCircuit(
        logical, {0, 1}, d, set, decomposer, cache, false);
    EXPECT_EQ(result.type_usage.at("S3"), result.two_qubit_count);
    EXPECT_EQ(result.two_qubit_count, 4); // 2 layers per ZZ
}

} // namespace
} // namespace qiset
