// Device model tests: calibration storage and the synthetic Aspen-8 /
// Sycamore generators.

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/device.h"

namespace qiset {
namespace {

TEST(Device, EdgeFidelityRoundTrip)
{
    Device d("toy", Topology::line(3));
    d.setEdgeFidelity(0, 1, "CZ", 0.93);
    EXPECT_NEAR(d.edgeFidelity(0, 1, "CZ"), 0.93, 1e-12);
    // Unordered lookup.
    EXPECT_NEAR(d.edgeFidelity(1, 0, "CZ"), 0.93, 1e-12);
    // Unknown type or edge: zero.
    EXPECT_EQ(d.edgeFidelity(0, 1, "XY"), 0.0);
    EXPECT_EQ(d.edgeFidelity(1, 2, "CZ"), 0.0);
    EXPECT_TRUE(d.supportsGate(0, 1, "CZ"));
    EXPECT_FALSE(d.supportsGate(1, 2, "CZ"));
}

TEST(Device, RejectsNonCoupledPairs)
{
    Device d("toy", Topology::line(3));
    EXPECT_THROW(d.setEdgeFidelity(0, 2, "CZ", 0.9), FatalError);
}

TEST(Device, UniformGateTypeAblation)
{
    Device d("toy", Topology::line(2));
    d.setEdgeFidelity(0, 1, "S1", 0.99);
    d.setEdgeFidelity(0, 1, "S2", 0.90);
    Device uniform = d.withUniformGateTypes("S1");
    EXPECT_NEAR(uniform.edgeFidelity(0, 1, "S2"), 0.99, 1e-12);
    // Original untouched.
    EXPECT_NEAR(d.edgeFidelity(0, 1, "S2"), 0.90, 1e-12);
}

TEST(Device, ScaledErrors)
{
    Device d("toy", Topology::line(2));
    d.setEdgeFidelity(0, 1, "S1", 0.99);
    Device scaled = d.withScaledTwoQubitErrors(2.0);
    EXPECT_NEAR(scaled.edgeFidelity(0, 1, "S1"), 0.98, 1e-12);
    Device half = d.withScaledTwoQubitErrors(0.5);
    EXPECT_NEAR(half.edgeFidelity(0, 1, "S1"), 0.995, 1e-12);
}

TEST(Device, NoiseModelForSubsetPreservesOrder)
{
    Device d("toy", Topology::line(3));
    QubitNoise qn0;
    qn0.t1_ns = 111.0;
    QubitNoise qn2;
    qn2.t1_ns = 333.0;
    d.setQubitNoise(0, qn0);
    d.setQubitNoise(2, qn2);
    NoiseModel model = d.noiseModelFor({2, 0});
    EXPECT_NEAR(model.qubit(0).t1_ns, 333.0, 1e-12);
    EXPECT_NEAR(model.qubit(1).t1_ns, 111.0, 1e-12);
}

TEST(Aspen8, MatchesPaperDescription)
{
    Rng rng(1);
    Device d = makeAspen8(rng);
    EXPECT_EQ(d.numQubits(), 30);
    EXPECT_TRUE(d.topology().connected());

    // Fig. 3 hardcoded ring-0 values.
    EXPECT_NEAR(d.edgeFidelity(0, 1, "S3"), 0.86, 1e-12);
    EXPECT_NEAR(d.edgeFidelity(0, 1, "S4"), 0.0, 1e-12);
    EXPECT_NEAR(d.edgeFidelity(2, 3, "S4"), 0.97, 1e-12);
    EXPECT_NEAR(d.edgeFidelity(6, 7, "S4"), 0.70, 1e-12);
    EXPECT_NEAR(d.edgeFidelity(7, 0, "S3"), 0.96, 1e-12);

    // Arbitrary-angle XY types live in the 95-99% band everywhere.
    for (auto [a, b] : d.topology().edges()) {
        double f = d.edgeFidelity(a, b, "XY");
        EXPECT_GE(f, 0.95);
        EXPECT_LE(f, 0.99);
        // CZ is calibrated on every edge.
        EXPECT_GT(d.edgeFidelity(a, b, "S3"), 0.8);
    }
}

TEST(Aspen8, SomeXyEdgesUnavailable)
{
    Rng rng(2);
    Device d = makeAspen8(rng);
    int unavailable = 0;
    for (auto [a, b] : d.topology().edges())
        if (d.edgeFidelity(a, b, "S4") == 0.0)
            ++unavailable;
    EXPECT_GT(unavailable, 0);
    EXPECT_LT(unavailable, d.topology().numEdges());
}

TEST(Sycamore, MatchesPaperDescription)
{
    Rng rng(3);
    Device d = makeSycamore(rng);
    EXPECT_EQ(d.numQubits(), 54);
    EXPECT_TRUE(d.topology().connected());

    // Every studied gate type calibrated on every edge, error within
    // the truncation band.
    for (auto [a, b] : d.topology().edges()) {
        for (const char* type : {"S1", "S4", "SWAP", "fSim"}) {
            double err = 1.0 - d.edgeFidelity(a, b, type);
            EXPECT_GE(err, 0.0005);
            EXPECT_LE(err, 0.03);
        }
    }

    // Mean SYC error near 0.62%.
    double mean_err = 1.0 - d.meanEdgeFidelity("S1");
    EXPECT_NEAR(mean_err, 0.0062, 0.0015);
}

TEST(Sycamore, GateTypesVaryPerEdge)
{
    Rng rng(4);
    Device d = makeSycamore(rng);
    // Cross-gate-type noise variation is the point of Fig. 10b vs 10e:
    // S1 and S2 fidelities must differ on most edges.
    int differing = 0;
    for (auto [a, b] : d.topology().edges())
        if (std::abs(d.edgeFidelity(a, b, "S1") -
                     d.edgeFidelity(a, b, "S2")) > 1e-6)
            ++differing;
    EXPECT_GT(differing, d.topology().numEdges() / 2);

    // And the ablated copy removes the variation.
    Device uniform = d.withUniformGateTypes("S1");
    for (auto [a, b] : uniform.topology().edges())
        EXPECT_NEAR(uniform.edgeFidelity(a, b, "S2"),
                    uniform.edgeFidelity(a, b, "S1"), 1e-12);
}

TEST(Device, ScaledNoiseAffectsEverything)
{
    Device d("toy", Topology::line(2));
    d.setEdgeFidelity(0, 1, "S1", 0.99);
    d.setOneQubitError(0, 0.002);
    QubitNoise qn;
    qn.t1_ns = 10e3;
    qn.t2_ns = 8e3;
    qn.readout_p01 = 0.02;
    d.setQubitNoise(0, qn);

    Device better = d.withScaledNoise(0.5);
    EXPECT_NEAR(better.edgeFidelity(0, 1, "S1"), 0.995, 1e-12);
    EXPECT_NEAR(better.oneQubitError(0), 0.001, 1e-12);
    EXPECT_NEAR(better.qubitNoise(0).t1_ns, 20e3, 1e-9);
    EXPECT_NEAR(better.qubitNoise(0).readout_p01, 0.01, 1e-12);
}

TEST(Device, DriftedCalibrationStaysBounded)
{
    Rng rng(9);
    Device d = makeSycamore(rng);
    Device drifted = d.withDriftedCalibration(rng, 3.0);
    int changed = 0;
    for (auto [a, b] : d.topology().edges()) {
        double e0 = 1.0 - d.edgeFidelity(a, b, "S1");
        double e1 = 1.0 - drifted.edgeFidelity(a, b, "S1");
        EXPECT_GE(e1, e0 / 3.0 - 1e-12);
        EXPECT_LE(e1, std::min(1.0, 3.0 * e0) + 1e-12);
        if (std::abs(e1 - e0) > 1e-9)
            ++changed;
    }
    EXPECT_GT(changed, d.topology().numEdges() / 2);
}

TEST(Device, UnitScalingIsIdentity)
{
    Rng rng(11);
    Device d = makeSycamore(rng);
    Device same = d.withScaledTwoQubitErrors(1.0);
    for (auto [a, b] : d.topology().edges())
        EXPECT_NEAR(same.edgeFidelity(a, b, "S1"),
                    d.edgeFidelity(a, b, "S1"), 1e-15);
}

TEST(Device, FamilyFidelityDominatesMembers)
{
    // The continuous-family key must be >= every member type on each
    // edge (DESIGN.md substitution model).
    Rng rng(12);
    Device syc = makeSycamore(rng);
    for (auto [a, b] : syc.topology().edges()) {
        double family = syc.edgeFidelity(a, b, "fSim");
        for (const char* member :
             {"S1", "S2", "S3", "S4", "S5", "S6", "S7", "SWAP"})
            EXPECT_GE(family + 1e-12,
                      syc.edgeFidelity(a, b, member));
        EXPECT_GE(syc.edgeFidelity(a, b, "CZt") + 1e-12,
                  syc.edgeFidelity(a, b, "S3"));
    }

    Device aspen = makeAspen8(rng);
    for (auto [a, b] : aspen.topology().edges()) {
        double family = aspen.edgeFidelity(a, b, "XY");
        for (const char* member : {"S2", "S5", "S6"})
            EXPECT_GE(family + 1e-12,
                      aspen.edgeFidelity(a, b, member));
    }
}

TEST(Devices, DeterministicUnderSeed)
{
    Rng rng_a(7), rng_b(7);
    Device a = makeSycamore(rng_a);
    Device b = makeSycamore(rng_b);
    for (auto [x, y] : a.topology().edges())
        EXPECT_EQ(a.edgeFidelity(x, y, "S1"), b.edgeFidelity(x, y, "S1"));
}

} // namespace
} // namespace qiset
