// Schedule IR tests: ASAP/ALAP invariants, per-moment frontiers,
// timing, and invalidation when the circuit is rewritten.

#include <gtest/gtest.h>

#include "apps/qft.h"
#include "apps/qv.h"
#include "circuit/schedule.h"
#include "common/error.h"
#include "common/rng.h"
#include "compiler/routing.h"
#include "qc/gates.h"

namespace qiset {
namespace {

using namespace gates;

TEST(Schedule, AsapMomentsOfKnownCircuit)
{
    // 0-1 and 2-3 commute into moment 0; 1-2 depends on both.
    Circuit c(4);
    c.add2q(0, 1, cz(), "CZ");
    c.add2q(2, 3, cz(), "CZ");
    c.add2q(1, 2, cz(), "CZ");
    c.add1q(0, hadamard(), "H");

    Schedule schedule(c);
    ASSERT_TRUE(schedule.valid());
    EXPECT_EQ(schedule.numOps(), 4u);
    EXPECT_EQ(schedule.depth(), 2);
    EXPECT_EQ(schedule.asapMoment(0), 0);
    EXPECT_EQ(schedule.asapMoment(1), 0);
    EXPECT_EQ(schedule.asapMoment(2), 1);
    EXPECT_EQ(schedule.asapMoment(3), 1); // H waits for the 0-1 CZ
}

TEST(Schedule, DepthMatchesCircuitDepth)
{
    Rng rng(321);
    Circuit qv = makeQuantumVolumeCircuit(5, rng);
    Schedule schedule(qv);
    EXPECT_EQ(schedule.depth(), qv.depth());

    Circuit qft = makeQftCircuit(6);
    EXPECT_EQ(Schedule(qft).depth(), qft.depth());
}

TEST(Schedule, AlapInvariants)
{
    Rng rng(322);
    Circuit c = makeQuantumVolumeCircuit(4, rng);
    Schedule schedule(c);

    // ALAP never schedules earlier than ASAP and never past the last
    // moment; slack is their gap.
    for (size_t i = 0; i < schedule.numOps(); ++i) {
        EXPECT_LE(schedule.asapMoment(i), schedule.alapMoment(i));
        EXPECT_LT(schedule.alapMoment(i), schedule.depth());
        EXPECT_GE(schedule.asapMoment(i), 0);
        EXPECT_EQ(schedule.slack(i),
                  schedule.alapMoment(i) - schedule.asapMoment(i));
    }

    // Both directions agree on the critical path: some op sits at
    // slack zero in every moment of a maximal chain.
    int zero_slack = 0;
    for (size_t i = 0; i < schedule.numOps(); ++i)
        if (schedule.slack(i) == 0)
            ++zero_slack;
    EXPECT_GE(zero_slack, schedule.depth());
}

TEST(Schedule, AlapOfChainEqualsAsap)
{
    // A pure dependency chain has no slack anywhere.
    Circuit c(3);
    c.add2q(0, 1, cz(), "CZ");
    c.add2q(1, 2, cz(), "CZ");
    c.add2q(0, 1, cz(), "CZ");
    Schedule schedule(c);
    for (size_t i = 0; i < schedule.numOps(); ++i)
        EXPECT_EQ(schedule.slack(i), 0) << "op " << i;
}

TEST(Schedule, ShortParallelBranchHasSlack)
{
    Circuit c(3);
    c.add2q(0, 1, cz(), "CZ");
    c.add2q(0, 1, cz(), "CZ");
    c.add1q(2, hadamard(), "H"); // free to run in either moment
    Schedule schedule(c);
    EXPECT_EQ(schedule.depth(), 2);
    EXPECT_EQ(schedule.asapMoment(2), 0);
    EXPECT_EQ(schedule.alapMoment(2), 1);
    EXPECT_EQ(schedule.slack(2), 1);
}

TEST(Schedule, MomentsAndFrontierPartitionTheCircuit)
{
    Rng rng(323);
    Circuit c = makeQuantumVolumeCircuit(5, rng);
    c.add1q(0, hadamard(), "H");
    Schedule schedule(c);

    ASSERT_EQ(schedule.moments().size(),
              static_cast<size_t>(schedule.depth()));
    ASSERT_EQ(schedule.twoQubitFrontier().size(),
              static_cast<size_t>(schedule.depth()));

    size_t seen = 0;
    for (int m = 0; m < schedule.depth(); ++m) {
        const auto& moment = schedule.moments()[m];
        EXPECT_FALSE(moment.empty()) << "empty moment " << m;
        // No two ops of one moment may share a qubit.
        std::vector<bool> used(c.numQubits(), false);
        for (size_t op : moment) {
            EXPECT_EQ(schedule.asapMoment(op), m);
            for (int q : c.ops()[op].qubits()) {
                EXPECT_FALSE(used[q]) << "qubit collision in moment";
                used[q] = true;
            }
        }
        // The frontier is exactly the moment's 2Q subset, in order.
        std::vector<size_t> expected_frontier;
        for (size_t op : moment)
            if (c.ops()[op].isTwoQubit())
                expected_frontier.push_back(op);
        MomentView frontier = schedule.twoQubitFrontier()[m];
        std::vector<size_t> actual_frontier(frontier.begin(),
                                            frontier.end());
        EXPECT_EQ(actual_frontier, expected_frontier);
        seen += moment.size();
    }
    EXPECT_EQ(seen, c.size());
    EXPECT_GE(schedule.maxParallelTwoQubit(), 1u);
}

TEST(Schedule, StartTimesRespectDurations)
{
    Circuit c(3);
    c.add2q(0, 1, cz(), "CZ");
    c.add2q(1, 2, cz(), "CZ");
    c.add1q(2, hadamard(), "H");
    auto ops = c.mutableOps();
    ops[0].setDurationNs(30.0);
    ops[1].setDurationNs(40.0);
    ops[2].setDurationNs(10.0);

    Schedule schedule(c);
    EXPECT_DOUBLE_EQ(schedule.startTimeNs(0), 0.0);
    EXPECT_DOUBLE_EQ(schedule.startTimeNs(1), 30.0);
    EXPECT_DOUBLE_EQ(schedule.startTimeNs(2), 70.0);
    EXPECT_DOUBLE_EQ(schedule.durationNs(), 80.0);
    EXPECT_DOUBLE_EQ(schedule.durationNs(), c.scheduledDurationNs());
}

TEST(Schedule, InvalidationAfterSwapInsertion)
{
    // Routing rewrites the circuit; a schedule built before must
    // report itself stale and rebuild cleanly.
    Circuit logical(3);
    logical.add2q(0, 2, cz(), "CZ"); // non-adjacent on a line
    Schedule schedule(logical);
    ASSERT_TRUE(schedule.consistentWith(logical));

    RoutedCircuit routed = routeCircuit(logical, Topology::line(3));
    ASSERT_GT(routed.swaps_inserted, 0);
    EXPECT_FALSE(schedule.consistentWith(routed.circuit));

    schedule.build(routed.circuit);
    EXPECT_TRUE(schedule.consistentWith(routed.circuit));
    EXPECT_EQ(schedule.numOps(), routed.circuit.size());
}

TEST(Schedule, ErrorRateEditsKeepScheduleConsistent)
{
    // Crosstalk inflation rewrites error rates only; the moment
    // structure must stay valid so passes can share one schedule.
    Circuit c(2);
    c.add2q(0, 1, cz(), "CZ");
    Schedule schedule(c);
    c.mutableOps()[0].setErrorRate(0.5);
    EXPECT_TRUE(schedule.consistentWith(c));

    // Changing the qubit structure breaks consistency...
    Circuit widened(2);
    widened.add2q(1, 0, cz(), "CZ");
    EXPECT_FALSE(schedule.consistentWith(widened));

    // ...and so does changing a duration (timing went stale).
    c.mutableOps()[0].setDurationNs(25.0);
    EXPECT_FALSE(schedule.consistentWith(c));
}

TEST(Schedule, ExplicitInvalidateAndRejectsUseBeforeBuild)
{
    Circuit c(2);
    c.add2q(0, 1, cz(), "CZ");
    Schedule schedule(c);
    schedule.invalidate();
    EXPECT_FALSE(schedule.valid());
    EXPECT_FALSE(schedule.consistentWith(c));
    EXPECT_THROW(schedule.asapMoment(0), FatalError);

    Schedule unbuilt;
    EXPECT_FALSE(unbuilt.valid());
    EXPECT_THROW(unbuilt.alapMoment(0), FatalError);
    EXPECT_THROW(unbuilt.startTimeNs(0), FatalError);
}

TEST(Schedule, EmptyCircuit)
{
    Circuit c(2);
    Schedule schedule(c);
    EXPECT_TRUE(schedule.valid());
    EXPECT_EQ(schedule.depth(), 0);
    EXPECT_EQ(schedule.numOps(), 0u);
    EXPECT_DOUBLE_EQ(schedule.durationNs(), 0.0);
    EXPECT_EQ(schedule.maxParallelTwoQubit(), 0u);
}

} // namespace
} // namespace qiset
