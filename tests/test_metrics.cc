// Metric tests: HOP, XED, linear XEB, TVD and distribution
// permutation.

#include <gtest/gtest.h>

#include "common/error.h"
#include "metrics/metrics.h"

namespace qiset {
namespace {

TEST(Hop, PerfectExecutionOfSkewedDistribution)
{
    std::vector<double> ideal = {0.5, 0.3, 0.15, 0.05};
    // Median is 0.225: heavy set = {0, 1} with mass 0.8.
    EXPECT_NEAR(heavyOutputProbability(ideal, ideal), 0.8, 1e-12);
}

TEST(Hop, UniformNoisyOutputGivesHalf)
{
    std::vector<double> ideal = {0.5, 0.3, 0.15, 0.05};
    std::vector<double> uniform(4, 0.25);
    EXPECT_NEAR(heavyOutputProbability(ideal, uniform), 0.5, 1e-12);
}

TEST(Hop, DegradesMonotonically)
{
    std::vector<double> ideal = {0.6, 0.25, 0.1, 0.05};
    std::vector<double> mild = {0.5, 0.25, 0.15, 0.1};
    std::vector<double> heavy = {0.3, 0.25, 0.25, 0.2};
    double h_ideal = heavyOutputProbability(ideal, ideal);
    double h_mild = heavyOutputProbability(ideal, mild);
    double h_heavy = heavyOutputProbability(ideal, heavy);
    EXPECT_GT(h_ideal, h_mild);
    EXPECT_GT(h_mild, h_heavy);
}

TEST(Xed, PerfectIsOneUniformIsZero)
{
    std::vector<double> ideal = {0.7, 0.2, 0.08, 0.02};
    std::vector<double> uniform(4, 0.25);
    EXPECT_NEAR(crossEntropyDifference(ideal, ideal), 1.0, 1e-12);
    EXPECT_NEAR(crossEntropyDifference(ideal, uniform), 0.0, 1e-12);
}

TEST(Xed, InterpolatesForDepolarizedOutput)
{
    std::vector<double> ideal = {0.7, 0.2, 0.08, 0.02};
    // 60% signal + 40% uniform.
    std::vector<double> mixed(4);
    for (size_t i = 0; i < 4; ++i)
        mixed[i] = 0.6 * ideal[i] + 0.4 * 0.25;
    EXPECT_NEAR(crossEntropyDifference(ideal, mixed), 0.6, 1e-12);
}

TEST(Xeb, PerfectIsOneUniformIsZero)
{
    std::vector<double> ideal = {0.55, 0.25, 0.15, 0.05};
    std::vector<double> uniform(4, 0.25);
    EXPECT_NEAR(linearXebFidelity(ideal, ideal), 1.0, 1e-12);
    EXPECT_NEAR(linearXebFidelity(ideal, uniform), 0.0, 1e-12);
}

TEST(Xeb, LinearInDepolarizingFraction)
{
    std::vector<double> ideal = {0.55, 0.25, 0.15, 0.05};
    std::vector<double> mixed(4);
    double f = 0.37;
    for (size_t i = 0; i < 4; ++i)
        mixed[i] = f * ideal[i] + (1.0 - f) * 0.25;
    EXPECT_NEAR(linearXebFidelity(ideal, mixed), f, 1e-12);
}

TEST(Tvd, BasicProperties)
{
    std::vector<double> p = {1.0, 0.0};
    std::vector<double> q = {0.0, 1.0};
    EXPECT_NEAR(totalVariationDistance(p, q), 1.0, 1e-12);
    EXPECT_NEAR(totalVariationDistance(p, p), 0.0, 1e-12);
}

TEST(Permute, IdentityMapping)
{
    std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
    auto out = permuteProbabilities(probs, {0, 1});
    EXPECT_EQ(out, probs);
}

TEST(Permute, SwappedQubits)
{
    // Logical 0 sits at physical position 1 and vice versa: basis
    // |01> and |10> exchange.
    std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
    auto out = permuteProbabilities(probs, {1, 0});
    EXPECT_NEAR(out[0], 0.1, 1e-12);
    EXPECT_NEAR(out[1], 0.3, 1e-12);
    EXPECT_NEAR(out[2], 0.2, 1e-12);
    EXPECT_NEAR(out[3], 0.4, 1e-12);
}

TEST(Permute, ThreeQubitCycle)
{
    // logical l -> physical position mapping = (1, 2, 0).
    std::vector<double> probs(8, 0.0);
    probs[0b100] = 1.0; // physical bit pattern: position 0 set.
    auto out = permuteProbabilities(probs, {1, 2, 0});
    // Position 0 hosts logical 2 (mapping[2] = 0), so logical |001|.
    EXPECT_NEAR(out[0b001], 1.0, 1e-12);
}

TEST(Permute, PreservesTotalMass)
{
    std::vector<double> probs = {0.05, 0.1, 0.15, 0.2,
                                 0.25, 0.1, 0.1, 0.05};
    auto out = permuteProbabilities(probs, {2, 0, 1});
    double total = 0.0;
    for (double p : out)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Metrics, MismatchedSizesThrow)
{
    std::vector<double> a = {1.0};
    std::vector<double> b = {0.5, 0.5};
    EXPECT_THROW(heavyOutputProbability(a, b), FatalError);
    EXPECT_THROW(crossEntropyDifference(a, b), FatalError);
    EXPECT_THROW(linearXebFidelity(a, b), FatalError);
}

} // namespace
} // namespace qiset
