// Unit tests for the bump-arena allocator behind the compile hot path.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/arena.h"
#include "common/error.h"

namespace qiset {
namespace {

bool
isAligned(const void* p, size_t align)
{
    return reinterpret_cast<uintptr_t>(p) % align == 0;
}

TEST(MemArena, RespectsRequestedAlignment)
{
    MemArena arena(256);
    // Interleave odd sizes with strict alignments to force padding.
    for (size_t i = 0; i < 100; ++i) {
        char* byte = static_cast<char*>(arena.allocate(1, 1));
        *byte = 'x'; // must be writable
        void* p8 = arena.allocate(24, 8);
        void* p16 = arena.allocate(32, 16);
        void* p64 = arena.allocate(24, 64);
        EXPECT_TRUE(isAligned(p8, 8));
        EXPECT_TRUE(isAligned(p16, 16));
        EXPECT_TRUE(isAligned(p64, 64));
    }
}

TEST(MemArena, RejectsNonPowerOfTwoAlignment)
{
    MemArena arena;
    EXPECT_THROW(arena.allocate(8, 3), FatalError);
    EXPECT_THROW(arena.allocate(8, 0), FatalError);
}

TEST(MemArena, ZeroByteAllocationsAreDistinct)
{
    MemArena arena;
    void* a = arena.allocate(0);
    void* b = arena.allocate(0);
    EXPECT_NE(a, nullptr);
    EXPECT_NE(b, nullptr);
    EXPECT_NE(a, b);
}

TEST(MemArena, AllocationsDoNotOverlap)
{
    MemArena arena(128); // tiny blocks force chaining
    std::vector<int*> ptrs;
    for (int i = 0; i < 500; ++i) {
        int* p = arena.allocateArray<int>(3);
        p[0] = p[1] = p[2] = i;
        ptrs.push_back(p);
    }
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(ptrs[i][0], i);
        EXPECT_EQ(ptrs[i][2], i);
    }
    EXPECT_GT(arena.blockCount(), 1u);
}

TEST(MemArena, ResetReusesChainedBlocks)
{
    MemArena arena(1024);
    auto churn = [&] {
        for (int i = 0; i < 200; ++i)
            arena.allocate(64);
    };
    churn();
    uint64_t after_first = arena.blocksEverAllocated();
    size_t reserved = arena.bytesReserved();
    EXPECT_GT(after_first, 0u);

    // Steady state: every later round runs from the warm blocks.
    for (int round = 0; round < 10; ++round) {
        arena.reset();
        EXPECT_EQ(arena.bytesAllocated(), 0u);
        churn();
        EXPECT_EQ(arena.blocksEverAllocated(), after_first);
        EXPECT_EQ(arena.bytesReserved(), reserved);
    }
}

TEST(MemArena, OversizedRequestsGetDedicatedBlocksFreedOnReset)
{
    MemArena arena(256);
    char* big = static_cast<char*>(arena.allocate(10 * 1024));
    std::memset(big, 0xab, 10 * 1024); // whole range usable
    size_t reserved_with_big = arena.bytesReserved();
    EXPECT_GE(reserved_with_big, 10 * 1024u);

    arena.reset();
    // The dedicated block is gone; regular blocks stay.
    EXPECT_LT(arena.bytesReserved(), reserved_with_big);

    // Regular small traffic still works after the reset.
    int* p = arena.allocateArray<int>(8);
    std::iota(p, p + 8, 0);
    EXPECT_EQ(p[7], 7);
}

TEST(MemArena, ArenaVectorGrowsInsideArena)
{
    MemArena arena;
    auto v = makeArenaVector<int>(arena);
    for (int i = 0; i < 1000; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 1000u);
    EXPECT_EQ(v[999], 999);
    EXPECT_GT(arena.bytesAllocated(), 1000 * sizeof(int));

    auto filled = makeArenaVector<double>(arena, 17, 2.5);
    EXPECT_EQ(filled.size(), 17u);
    EXPECT_EQ(filled[16], 2.5);
}

TEST(MemArena, ArenaAllocatorEqualityFollowsArenaIdentity)
{
    MemArena a, b;
    ArenaAllocator<int> aa(a), ab(a), ba(b);
    EXPECT_TRUE(aa == ab);
    EXPECT_FALSE(aa == ba);
    ArenaAllocator<double> rebound(aa);
    EXPECT_TRUE(rebound == aa);
}

TEST(MemArena, ResetGuardRewindsOnScopeExit)
{
    MemArena arena;
    {
        ArenaResetGuard guard(arena);
        arena.allocate(4096);
        EXPECT_GT(arena.bytesAllocated(), 0u);
    }
    EXPECT_EQ(arena.bytesAllocated(), 0u);
}

} // namespace
} // namespace qiset
