// Deterministic service soak: thousands of tiny jobs through an async
// CompileService with the event stream on and a live background
// recorder. Asserts the telemetry invariants the trace exporter and
// cost model rely on: nothing dropped (ring sized for the burst),
// nothing duplicated, per-job lifecycle order monotone
// (submit <= admit <= dispatch <= pass spans <= complete), completion
// callbacks firing exactly once per job, and the exported Chrome trace
// staying span-balanced end to end.

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/qft.h"
#include "compiler/service.h"
#include "metrics/trace_export.h"

namespace qiset {
namespace {

CompileOptions
fastCompile()
{
    CompileOptions opts;
    opts.nuop.max_layers = 4;
    opts.nuop.multistarts = 2;
    opts.nuop.exact_threshold = 1.0 - 1e-6;
    return opts;
}

Device
lineDevice(const std::string& name, int n, double fid)
{
    Device d(name, Topology::line(n));
    for (auto [a, b] : d.topology().edges()) {
        d.setEdgeFidelity(a, b, "S3", fid);
        d.setEdgeFidelity(a, b, "S4", fid - 0.005);
    }
    for (int q = 0; q < n; ++q)
        d.setOneQubitError(q, 0.0005);
    return d;
}

/** Per-job record of the drained event log. */
struct JobLog
{
    uint64_t submit = 0, admit = 0, dispatch = 0, complete = 0;
    uint64_t first_pass = 0, last_pass = 0;
    size_t submits = 0, admits = 0, dispatches = 0, completes = 0;
    size_t pass_begins = 0, pass_completes = 0;
};

TEST(ServiceSoak, ThousandsOfJobsKeepTelemetryInvariants)
{
    const size_t kJobs = 1500;

    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(lineDevice("alpha", 3, 0.995));
    fleet.addDevice(lineDevice("beta", 3, 0.990));

    // ~9 packets per 1-circuit job (submit/admit/dispatch/7-pass
    // spans/cache/complete is ~17; passes dominate). The recorder
    // drains every 1 ms, so the ring only has to absorb the burst
    // between sweeps — but size it for the whole run anyway: the
    // assertion below is *zero* drops, not "few".
    EventStream stream(size_t{1} << 16);
    EventRecorder recorder(stream, 1.0);

    std::atomic<size_t> callbacks{0};
    {
        CompileServiceOptions options;
        options.workers = 2;
        options.events = &stream;
        CompileService service(fleet, set, options);

        Circuit app = makeQftCircuit(3);
        for (size_t i = 0; i < kJobs; ++i) {
            CompileRequest request;
            request.circuits.push_back(app);
            request.on_complete = [&callbacks](CompileJob job) {
                if (job.poll() == JobStatus::Done)
                    callbacks.fetch_add(1, std::memory_order_relaxed);
            };
            service.submit(std::move(request));
        }
        service.shutdown();
    }
    recorder.stop();
    EXPECT_EQ(callbacks.load(), kJobs);

    // Nothing dropped, and the log holds exactly what was published.
    EXPECT_EQ(stream.dropped(), 0u);
    const std::vector<ServiceEvent>& log = recorder.events();
    EXPECT_EQ(log.size(), stream.published());

    std::map<uint64_t, JobLog> jobs;
    for (const ServiceEvent& event : log) {
        JobLog& j = jobs[event.job];
        switch (event.type) {
        case ServiceEventType::Submit:
            ++j.submits;
            j.submit = event.ns;
            break;
        case ServiceEventType::Admit:
            ++j.admits;
            j.admit = event.ns;
            break;
        case ServiceEventType::Dispatch:
            ++j.dispatches;
            j.dispatch = event.ns;
            break;
        case ServiceEventType::PassBegin:
            if (++j.pass_begins == 1)
                j.first_pass = event.ns;
            break;
        case ServiceEventType::PassComplete:
            ++j.pass_completes;
            j.last_pass = event.ns;
            break;
        case ServiceEventType::Complete:
            ++j.completes;
            j.complete = event.ns;
            EXPECT_EQ(event.b, 1.0);
            break;
        default:
            break;
        }
    }

    // Every job exactly once, no phantom ids, no duplicates.
    ASSERT_EQ(jobs.size(), kJobs);
    for (const auto& [id, j] : jobs) {
        SCOPED_TRACE("job " + std::to_string(id));
        EXPECT_EQ(j.submits, 1u);
        EXPECT_EQ(j.admits, 1u);
        EXPECT_EQ(j.dispatches, 1u);
        EXPECT_EQ(j.completes, 1u);
        // Balanced pass spans, at least the default pipeline's count.
        EXPECT_EQ(j.pass_begins, j.pass_completes);
        EXPECT_GE(j.pass_begins, 5u);
        // Monotone lifecycle within the job.
        EXPECT_LE(j.submit, j.admit);
        EXPECT_LE(j.admit, j.dispatch);
        EXPECT_LE(j.dispatch, j.first_pass);
        EXPECT_LE(j.first_pass, j.last_pass);
        EXPECT_LE(j.last_pass, j.complete);
    }

    // The whole soak log renders as a balanced Chrome trace.
    TraceExportOptions options;
    options.shard_names = {"alpha", "beta"};
    options.pass_names = stream.passNames();
    std::string json = chromeTraceJson(log, options);
    size_t begins = 0, ends = 0;
    for (size_t pos = json.find("\"ph\":\"B\""); pos != std::string::npos;
         pos = json.find("\"ph\":\"B\"", pos + 1))
        ++begins;
    for (size_t pos = json.find("\"ph\":\"E\""); pos != std::string::npos;
         pos = json.find("\"ph\":\"E\"", pos + 1))
        ++ends;
    EXPECT_EQ(begins, ends);
    EXPECT_GT(begins, kJobs); // a job span + pass spans per job
}

TEST(ServiceSoak, TinyRingAccountsForOverflowExactly)
{
    // Same service shape, but a deliberately undersized ring and no
    // consumer: the surplus must be counted drop-for-drop while the
    // service stays fully functional.
    GateSet set = isa::rigettiSet(1);
    DeviceFleet fleet(fastCompile());
    fleet.addDevice(lineDevice("alpha", 3, 0.995));

    EventStream stream(16);
    size_t completed = 0;
    {
        CompileServiceOptions options;
        options.events = &stream;
        CompileService service(fleet, set, options);
        Circuit app = makeQftCircuit(3);
        for (int i = 0; i < 8; ++i) {
            CompileRequest request;
            request.circuits.push_back(app);
            if (service.submit(std::move(request)).wait() ==
                JobStatus::Done)
                ++completed;
        }
    }
    EXPECT_EQ(completed, 8u);
    // The ring filled, the excess was counted, nothing blocked.
    EXPECT_EQ(stream.published(), stream.capacity());
    EXPECT_GT(stream.dropped(), 0u);

    std::vector<ServiceEvent> out;
    EXPECT_EQ(stream.drain(out), stream.capacity());
}

} // namespace
} // namespace qiset
