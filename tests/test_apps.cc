// Workload generator tests: structure counts from Section VI.

#include <set>

#include <gtest/gtest.h>

#include "apps/fermi_hubbard.h"
#include "qc/gates.h"
#include "apps/qaoa.h"
#include "apps/qft.h"
#include "apps/qv.h"
#include "sim/statevector.h"

namespace qiset {
namespace {

TEST(Qv, LayerAndGateCounts)
{
    Rng rng(1);
    for (int n : {3, 4, 5, 6}) {
        Circuit c = makeQuantumVolumeCircuit(n, rng);
        // n layers, floor(n/2) SU4 gates each.
        EXPECT_EQ(c.twoQubitGateCount(), n * (n / 2)) << "n=" << n;
        EXPECT_EQ(c.countLabel("SU4"), c.twoQubitGateCount());
    }
}

TEST(Qv, BlocksAreSu4)
{
    Rng rng(2);
    Circuit c = makeQuantumVolumeCircuit(4, rng);
    for (const auto& op : c.ops()) {
        ASSERT_TRUE(op.isTwoQubit());
        EXPECT_TRUE(op.unitary().isUnitary(1e-10));
    }
}

TEST(Qv, RandomSu4HasUnitDeterminant)
{
    Rng rng(3);
    Matrix u = randomSu4(rng);
    EXPECT_TRUE(u.isUnitary(1e-10));
}

TEST(Qv, CircuitsDiffer)
{
    Rng rng(4);
    Circuit a = makeQuantumVolumeCircuit(4, rng);
    Circuit b = makeQuantumVolumeCircuit(4, rng);
    // Same structure but different unitaries (overwhelmingly likely).
    EXPECT_GT(a.ops()[0].unitary().maxAbsDiff(b.ops()[0].unitary()), 1e-6);
}

TEST(Qaoa, GraphSizeFollowsThreeQuartersRule)
{
    Rng rng(5);
    EXPECT_EQ(randomMaxcutGraph(4, rng).size(), 3u);  // ceil(12/4)
    EXPECT_EQ(randomMaxcutGraph(6, rng).size(), 5u);  // ceil(18/4)
    EXPECT_EQ(randomMaxcutGraph(8, rng).size(), 6u);  // ceil(24/4)
}

TEST(Qaoa, CircuitStructure)
{
    Rng rng(6);
    Circuit c = makeRandomQaoaCircuit(6, rng);
    // 2Q count equals edge count; H and RX layers on every qubit.
    EXPECT_EQ(c.twoQubitGateCount(), 5);
    EXPECT_EQ(c.countLabel("H"), 6);
    EXPECT_EQ(c.countLabel("RX"), 6);
    EXPECT_EQ(c.countLabel("ZZ"), 5);
}

TEST(Qaoa, EdgesAreValidAndDistinct)
{
    Rng rng(7);
    auto edges = randomMaxcutGraph(6, rng);
    std::set<std::pair<int, int>> seen;
    for (auto [a, b] : edges) {
        EXPECT_GE(a, 0);
        EXPECT_LT(b, 6);
        EXPECT_LT(a, b);
        EXPECT_TRUE(seen.insert({a, b}).second);
    }
}

TEST(FermiHubbard, InteractionCountsMatchPaper)
{
    for (int n : {6, 10, 20}) {
        Circuit c = makeFermiHubbardCircuit(n, 0.4, 0.2);
        // ~2n ZZ interactions and ~4n hopping terms (Section VI).
        int zz = c.countLabel("ZZ");
        int hop = c.countLabel("XXYY");
        EXPECT_NEAR(zz, 2 * n, 2.0) << "n=" << n;
        EXPECT_NEAR(hop, 4 * n, 8.0) << "n=" << n;
        EXPECT_EQ(c.twoQubitGateCount(), zz + hop);
    }
}

TEST(FermiHubbard, NearestNeighbourOnly)
{
    Circuit c = makeFermiHubbardCircuit(8, 0.3, 0.1);
    for (const auto& op : c.ops())
        if (op.isTwoQubit())
            EXPECT_EQ(std::abs(op.qubits()[0] - op.qubits()[1]), 1);
}

TEST(Qft, GateCountIsQuadratic)
{
    for (int n : {3, 4, 6}) {
        Circuit c = makeQftCircuit(n);
        EXPECT_EQ(c.twoQubitGateCount(), n * (n - 1) / 2);
        EXPECT_EQ(c.countLabel("H"), n);
    }
}

TEST(Qft, ThreeQubitUnitaryMatchesDft)
{
    // QFT matrix elements: omega^(jk) / sqrt(8) with bit-reversed
    // output ordering (we omit the final SWAP network).
    Circuit c = makeQftCircuit(3);
    Matrix u = c.unitary();
    const int n = 8;
    auto bitrev3 = [](int x) {
        return ((x & 1) << 2) | (x & 2) | ((x >> 2) & 1);
    };
    double s = 1.0 / std::sqrt(8.0);
    for (int row = 0; row < n; ++row) {
        for (int col = 0; col < n; ++col) {
            double angle =
                2.0 * gates::kPi * bitrev3(row) * col / 8.0;
            cplx expected = cplx(std::cos(angle), std::sin(angle)) * s;
            EXPECT_NEAR(std::abs(u(row, col) - expected), 0.0, 1e-9)
                << row << "," << col;
        }
    }
}

TEST(Qft, InputPreparationProducesFourierState)
{
    const int n = 3;
    const size_t input = 5;
    Circuit c = makeQftCircuitOnInput(n, input);
    StateVector s(n);
    s.run(c);
    // All output probabilities are uniform 1/8 for a basis input.
    for (double p : s.probabilities())
        EXPECT_NEAR(p, 1.0 / 8.0, 1e-9);
}

} // namespace
} // namespace qiset
