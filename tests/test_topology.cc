// Coupling-graph tests.

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/topology.h"

namespace qiset {
namespace {

TEST(Topology, LineStructure)
{
    Topology t = Topology::line(5);
    EXPECT_EQ(t.numQubits(), 5);
    EXPECT_EQ(t.numEdges(), 4);
    EXPECT_TRUE(t.adjacent(0, 1));
    EXPECT_FALSE(t.adjacent(0, 2));
    EXPECT_TRUE(t.connected());
}

TEST(Topology, RingClosesLoop)
{
    Topology t = Topology::ring(8);
    EXPECT_EQ(t.numEdges(), 8);
    EXPECT_TRUE(t.adjacent(7, 0));
}

TEST(Topology, GridStructure)
{
    Topology t = Topology::grid(6, 9);
    EXPECT_EQ(t.numQubits(), 54);
    EXPECT_EQ(t.numEdges(), 6 * 8 + 5 * 9); // 93
    EXPECT_TRUE(t.adjacent(0, 1));
    EXPECT_TRUE(t.adjacent(0, 9));
    EXPECT_FALSE(t.adjacent(0, 10));
    EXPECT_TRUE(t.connected());
}

TEST(Topology, AddEdgeIsIdempotent)
{
    Topology t(3);
    t.addEdge(0, 1);
    t.addEdge(1, 0);
    EXPECT_EQ(t.numEdges(), 1);
}

TEST(Topology, RejectsSelfLoopsAndBadIndexes)
{
    Topology t(3);
    EXPECT_THROW(t.addEdge(1, 1), FatalError);
    EXPECT_THROW(t.addEdge(0, 3), FatalError);
}

TEST(Topology, ShortestPathOnLine)
{
    Topology t = Topology::line(6);
    auto path = t.shortestPath(1, 4);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path.front(), 1);
    EXPECT_EQ(path.back(), 4);
    for (size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(t.adjacent(path[i], path[i + 1]));
}

TEST(Topology, ShortestPathTakesRingShortcut)
{
    Topology t = Topology::ring(8);
    auto path = t.shortestPath(0, 6);
    EXPECT_EQ(path.size(), 3u); // 0 -> 7 -> 6
}

TEST(Topology, ShortestPathSameNode)
{
    Topology t = Topology::line(3);
    auto path = t.shortestPath(2, 2);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0], 2);
}

TEST(Topology, DisconnectedGraphDetected)
{
    Topology t(4);
    t.addEdge(0, 1);
    t.addEdge(2, 3);
    EXPECT_FALSE(t.connected());
    EXPECT_TRUE(t.shortestPath(0, 3).empty());
}

TEST(Topology, InducedSubgraphRelabels)
{
    Topology t = Topology::grid(3, 3);
    // Take the middle row: qubits 3, 4, 5 form a line.
    Topology sub = t.inducedSubgraph({3, 4, 5});
    EXPECT_EQ(sub.numQubits(), 3);
    EXPECT_EQ(sub.numEdges(), 2);
    EXPECT_TRUE(sub.adjacent(0, 1));
    EXPECT_TRUE(sub.adjacent(1, 2));
    EXPECT_FALSE(sub.adjacent(0, 2));
}

} // namespace
} // namespace qiset
