// Calibration cost-model tests (Section IX anchors).

#include <gtest/gtest.h>

#include "calibration/calibration_model.h"
#include "common/error.h"

namespace qiset {
namespace {

TEST(Calibration, PerPairPerTypeBreakdown)
{
    CalibrationCostModel model;
    // 200 + 200 + 1000 + 1000 * 10 = 11400.
    EXPECT_EQ(model.circuitsPerPairPerType(), 11400);
}

TEST(Calibration, LinearInTypesAndPairs)
{
    CalibrationCostModel model;
    long long one = model.totalCircuits(10, 1);
    long long two = model.totalCircuits(10, 2);
    long long double_pairs = model.totalCircuits(20, 1);
    EXPECT_EQ(two - one, 10 * model.circuitsPerPairPerType());
    EXPECT_EQ(double_pairs, 2 * one);
}

TEST(Calibration, PaperScaleAnchors)
{
    CalibrationCostModel model;
    // 54-qubit device, ~10 gate types: order 10^7 circuits (Fig. 11a).
    long long sycamore = model.totalCircuits(gridPairCount(54), 10);
    EXPECT_GT(sycamore, 5e6);
    EXPECT_LT(sycamore, 5e7);

    // 1000-qubit device at the full 361-type grid: order 10^9-10^10.
    long long kiloqubit =
        model.totalCircuits(gridPairCount(1000), 361);
    EXPECT_GT(kiloqubit, 5e9);
    EXPECT_LT(kiloqubit, 5e10);
}

TEST(Calibration, ContinuousVsDiscreteIsTwoOrdersOfMagnitude)
{
    CalibrationCostModel model;
    int pairs = gridPairCount(54);
    double ratio =
        static_cast<double>(model.totalCircuits(pairs, 361)) /
        static_cast<double>(model.totalCircuits(pairs, 4));
    EXPECT_GT(ratio, 50.0);
    EXPECT_LT(ratio, 120.0);
}

TEST(Calibration, WallClockAnchors)
{
    CalibrationCostModel model;
    // One gate type: a few hours (Sycamore's "up to 4h/day").
    EXPECT_GT(model.wallClockHours(1), 2.0);
    EXPECT_LT(model.wallClockHours(1), 6.0);
    // Eight types: ~20 hours (Fig. 11b's right edge).
    EXPECT_GT(model.wallClockHours(8), 15.0);
    EXPECT_LT(model.wallClockHours(8), 25.0);
}

TEST(Calibration, WallClockMonotone)
{
    CalibrationCostModel model;
    for (int t = 1; t < 10; ++t)
        EXPECT_LT(model.wallClockHours(t), model.wallClockHours(t + 1));
}

TEST(GridPairCount, SmallCases)
{
    EXPECT_EQ(gridPairCount(2), 1);
    // 2x2 grid: 4 edges.
    EXPECT_EQ(gridPairCount(4), 4);
    // 54 qubits -> near the Sycamore coupler count (~88-93).
    EXPECT_GT(gridPairCount(54), 80);
    EXPECT_LT(gridPairCount(54), 100);
    // ~2 edges per qubit for large grids.
    EXPECT_NEAR(gridPairCount(1000), 2000, 120);
}

TEST(Calibration, InvalidInputsThrow)
{
    CalibrationCostModel model;
    EXPECT_THROW(model.totalCircuits(0, 1), FatalError);
    EXPECT_THROW(model.totalCircuits(1, 0), FatalError);
    EXPECT_THROW(model.wallClockHours(0), FatalError);
    EXPECT_THROW(gridPairCount(1), FatalError);
}

} // namespace
} // namespace qiset
