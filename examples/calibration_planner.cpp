/**
 * @file
 * Calibration planner: given a device size and candidate instruction
 * sets, print the calibration budget (circuits and wall-clock hours)
 * of Section IX's cost model.
 *
 * Usage: calibration_planner [num_qubits]   (default 54)
 */

#include <cstdlib>
#include <iostream>

#include "calibration/calibration_model.h"
#include "common/table.h"
#include "isa/gate_set.h"

using namespace qiset;

int
main(int argc, char** argv)
{
    int num_qubits = argc > 1 ? std::atoi(argv[1]) : 54;
    int pairs = gridPairCount(num_qubits);
    CalibrationCostModel model;

    std::cout << "Device: " << num_qubits << " qubits, ~" << pairs
              << " coupled pairs\n"
              << "Per (pair, gate type): "
              << model.circuitsPerPairPerType() << " circuits\n\n";

    Table table({"instruction set", "gate types", "total circuits",
                 "wall clock (h)"});
    auto add = [&](const GateSet& set) {
        int types = set.calibrationTypeCount();
        table.addRow({set.name, std::to_string(types),
                      fmtSci(static_cast<double>(
                                 model.totalCircuits(pairs, types)),
                             2),
                      fmtDouble(model.wallClockHours(types), 1)});
    };
    add(isa::singleTypeSet(1));
    add(isa::googleSet(1));
    add(isa::googleSet(4));
    add(isa::googleSet(7));
    add(isa::fullFsim());
    table.print(std::cout);

    std::cout << "\nThe paper's recommendation: 4-8 expressive types "
                 "(G4-G7) cost two orders\nof magnitude less "
                 "calibration than the 361-point continuous family\n"
                 "while matching its application fidelity.\n";
    return 0;
}
