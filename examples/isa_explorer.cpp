/**
 * @file
 * ISA explorer: for a user-chosen fSim(theta, phi) gate type, report
 * how many applications of it NuOp needs for each workload's
 * characteristic unitaries — a one-point slice of the paper's Fig. 8
 * heatmaps.
 *
 * Usage: isa_explorer [theta_over_pi] [phi_over_pi]
 *        (defaults: 0.25 0 -> sqrt(iSWAP))
 */

#include <cstdlib>
#include <iostream>

#include "apps/qaoa.h"
#include "apps/qv.h"
#include "common/table.h"
#include "nuop/decomposer.h"
#include "qc/gates.h"

using namespace qiset;

int
main(int argc, char** argv)
{
    double theta = gates::kPi * (argc > 1 ? std::atof(argv[1]) : 0.25);
    double phi = gates::kPi * (argc > 2 ? std::atof(argv[2]) : 0.0);

    Matrix gate_unitary = gates::fsim(theta, phi);
    HardwareGate gate = makeFixedGate("fSim", gate_unitary);
    std::cout << "Hardware gate: fSim(" << theta << ", " << phi
              << ")\n\n";

    NuOpOptions options;
    options.max_layers = 6;
    NuOpDecomposer nuop(options);
    Rng rng(99);

    auto average_layers = [&](auto make_unitary, int samples) {
        double total = 0.0;
        for (int s = 0; s < samples; ++s) {
            Decomposition d =
                nuop.decomposeExact(make_unitary(), gate);
            total += d.layers;
        }
        return total / samples;
    };

    Table table({"workload unitary", "avg gates needed"});
    table.addRow({"QV (random SU(4))", fmtDouble(average_layers(
                                           [&] { return randomSu4(rng); },
                                           5), 2)});
    table.addRow(
        {"QAOA (ZZ interaction)",
         fmtDouble(average_layers(
                       [&] {
                           return gates::zz(rng.uniform(0.1, 1.5));
                       },
                       5),
                   2)});
    table.addRow(
        {"QFT (CPhase)",
         fmtDouble(average_layers(
                       [&] {
                           return gates::cphase(rng.uniform(0.1, 3.0));
                       },
                       5),
                   2)});
    table.addRow(
        {"FH (hopping XX+YY)",
         fmtDouble(average_layers(
                       [&] {
                           return gates::xxPlusYy(
                               rng.uniform(0.1, 1.5));
                       },
                       5),
                   2)});
    table.addRow({"SWAP", fmtDouble(average_layers(
                              [&] { return gates::swap(); }, 1), 2)});
    table.print(std::cout);

    std::cout << "\nTry other family points, e.g.:\n"
                 "  isa_explorer 0.5 0.1667   # SYC\n"
                 "  isa_explorer 0 1          # CZ\n"
                 "  isa_explorer 0.5 1        # SWAP-equivalent\n";
    return 0;
}
