/**
 * @file
 * Quickstart: decompose a random two-qubit application unitary into
 * different hardware gate types with NuOp, exactly and approximately.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <iostream>

#include "apps/qv.h"
#include "circuit/draw.h"
#include "common/rng.h"
#include "common/table.h"
#include "nuop/decomposer.h"
#include "nuop/kak.h"
#include "nuop/template_circuit.h"
#include "qc/gates.h"

using namespace qiset;

int
main()
{
    Rng rng(2021);
    Matrix target = randomSu4(rng);

    std::cout << "Random SU(4) application unitary:\n"
              << target.toString(3) << "\n";
    std::cout << "Analytic minimal CZ count (KAK): "
              << minimalCzCount(target) << "\n\n";

    NuOpOptions options;
    options.max_layers = 6;
    NuOpDecomposer nuop(options);

    struct Candidate
    {
        const char* name;
        Matrix unitary;
    };
    const Candidate candidates[] = {
        {"CZ", gates::cz()},
        {"SYC", gates::sycamore()},
        {"sqrt(iSWAP)", gates::sqrtIswap()},
        {"iSWAP", gates::iswap()},
    };

    Table table({"hardware gate", "layers (exact)", "Fd",
                 "layers (approx @ 99%)", "Fd*Fh"});
    for (const auto& candidate : candidates) {
        HardwareGate exact_gate =
            makeFixedGate(candidate.name, candidate.unitary);
        Decomposition exact = nuop.decomposeExact(target, exact_gate);

        HardwareGate noisy_gate =
            makeFixedGate(candidate.name, candidate.unitary, 0.99);
        Decomposition approx =
            nuop.decomposeApproximate(target, noisy_gate);

        table.addRow({candidate.name, std::to_string(exact.layers),
                      fmtDouble(exact.decomposition_fidelity, 6),
                      std::to_string(approx.layers),
                      fmtDouble(approx.overallFidelity(), 4)});
    }
    table.print(std::cout);

    // Show one decomposition as an actual circuit.
    HardwareGate syc = makeFixedGate("SYC", gates::sycamore());
    Decomposition d = nuop.decomposeExact(target, syc);
    TwoQubitTemplate templ(d.layers, gates::sycamore());
    auto u3s = templ.u3Matrices(d.params);
    Circuit circuit(2);
    circuit.add1q(0, u3s[0], "U3");
    circuit.add1q(1, u3s[1], "U3");
    for (int layer = 0; layer < d.layers; ++layer) {
        circuit.add2q(0, 1, gates::sycamore(), "SYC");
        circuit.add1q(0, u3s[2 * (layer + 1)], "U3");
        circuit.add1q(1, u3s[2 * (layer + 1) + 1], "U3");
    }
    std::cout << "\nSYC decomposition as a circuit (Fd = "
              << fmtDouble(d.decomposition_fidelity, 6) << "):\n\n"
              << drawCircuit(circuit);

    std::cout << "\nEvery gate type implements the same unitary; the "
                 "approximate mode\ntrades decomposition accuracy for "
                 "fewer noisy hardware gates (Eq. 2).\n";
    return 0;
}
