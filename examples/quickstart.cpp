/**
 * @file
 * Quickstart: decompose a random two-qubit application unitary into
 * different hardware gate types with NuOp, exactly and approximately;
 * then compile a small workload through the async CompileService
 * (request in, job handle out) and report per-pass wall-clock, job
 * telemetry and decomposition-cache statistics. The service runs with
 * the streaming telemetry stack on: completion callbacks fire as jobs
 * finish, and the drained event log is exported as a Chrome trace
 * (quickstart_trace.json — open it in Perfetto, see
 * docs/telemetry.md).
 *
 * Build & run:
 *     cmake -B build -S . && cmake --build build
 *     ./build/quickstart
 */

#include <atomic>
#include <iostream>

#include "apps/qaoa.h"
#include "apps/qv.h"
#include "circuit/draw.h"
#include "common/rng.h"
#include "common/table.h"
#include "compiler/service.h"
#include "metrics/event_stream.h"
#include "metrics/metrics.h"
#include "metrics/trace_export.h"
#include "nuop/decomposer.h"
#include "nuop/kak.h"
#include "nuop/template_circuit.h"
#include "qc/gates.h"

using namespace qiset;

int
main()
{
    Rng rng(2021);
    Matrix target = randomSu4(rng);

    std::cout << "Random SU(4) application unitary:\n"
              << target.toString(3) << "\n";
    std::cout << "Analytic minimal CZ count (KAK): "
              << minimalCzCount(target) << "\n\n";

    NuOpOptions options;
    options.max_layers = 6;
    NuOpDecomposer nuop(options);

    struct Candidate
    {
        const char* name;
        Matrix unitary;
    };
    const Candidate candidates[] = {
        {"CZ", gates::cz()},
        {"SYC", gates::sycamore()},
        {"sqrt(iSWAP)", gates::sqrtIswap()},
        {"iSWAP", gates::iswap()},
    };

    Table table({"hardware gate", "layers (exact)", "Fd",
                 "layers (approx @ 99%)", "Fd*Fh"});
    for (const auto& candidate : candidates) {
        HardwareGate exact_gate =
            makeFixedGate(candidate.name, candidate.unitary);
        Decomposition exact = nuop.decomposeExact(target, exact_gate);

        HardwareGate noisy_gate =
            makeFixedGate(candidate.name, candidate.unitary, 0.99);
        Decomposition approx =
            nuop.decomposeApproximate(target, noisy_gate);

        table.addRow({candidate.name, std::to_string(exact.layers),
                      fmtDouble(exact.decomposition_fidelity, 6),
                      std::to_string(approx.layers),
                      fmtDouble(approx.overallFidelity(), 4)});
    }
    table.print(std::cout);

    // Show one decomposition as an actual circuit.
    HardwareGate syc = makeFixedGate("SYC", gates::sycamore());
    Decomposition d = nuop.decomposeExact(target, syc);
    TwoQubitTemplate templ(d.layers, gates::sycamore());
    auto u3s = templ.u3Matrices(d.params);
    Circuit circuit(2);
    circuit.add1q(0, u3s[0], "U3");
    circuit.add1q(1, u3s[1], "U3");
    for (int layer = 0; layer < d.layers; ++layer) {
        circuit.add2q(0, 1, gates::sycamore(), "SYC");
        circuit.add1q(0, u3s[2 * (layer + 1)], "U3");
        circuit.add1q(1, u3s[2 * (layer + 1) + 1], "U3");
    }
    std::cout << "\nSYC decomposition as a circuit (Fd = "
              << fmtDouble(d.decomposition_fidelity, 6) << "):\n\n"
              << drawCircuit(circuit);

    std::cout << "\nEvery gate type implements the same unitary; the "
                 "approximate mode\ntrades decomposition accuracy for "
                 "fewer noisy hardware gates (Eq. 2).\n";

    // ---- end-to-end: the async CompileService request/job API --------
    std::cout << "\nServing a 4-circuit QAOA workload through the "
                 "async CompileService...\n\n";
    Device device("line4", Topology::line(4));
    for (auto [a, b] : device.topology().edges()) {
        device.setEdgeFidelity(a, b, "S3", 0.995);
        device.setEdgeFidelity(a, b, "S4", 0.99);
    }
    for (int q = 0; q < device.numQubits(); ++q)
        device.setOneQubitError(q, 0.0005);

    CompileOptions compile_options;
    compile_options.nuop.max_layers = 4;
    compile_options.nuop.multistarts = 2;
    compile_options.nuop.exact_threshold = 1.0 - 1e-6;

    std::vector<Circuit> workload;
    for (int i = 0; i < 4; ++i)
        workload.push_back(makeRandomQaoaCircuit(4, rng));

    // The service owns the fleet (one device here), the worker pool
    // and the shared profile cache; clients submit requests and wait
    // on job handles.
    DeviceFleet fleet(compile_options);
    fleet.addDevice(device);

    // Observability: workers write fixed-size packets into the ring
    // without blocking the compile hot path; the recorder drains them
    // in the background. The log becomes a Chrome trace below.
    EventStream events(1 << 12);
    EventRecorder recorder(events, 2.0);
    CompileServiceOptions service_options;
    service_options.workers = 2;
    service_options.events = &events;
    CompileService service(std::move(fleet), isa::rigettiSet(1),
                           service_options);

    CompileRequest request;
    request.circuits = workload;
    request.tag = "quickstart";
    // Completion callbacks are the primary notification pattern: fired
    // exactly once, outside the service locks, when the job turns
    // terminal — no polling thread needed. The callback runs on a
    // worker thread, so it records rather than prints; shutdown()
    // below waits for every pending callback, after which the count
    // is safe to read.
    std::atomic<int> callbacks_fired{0};
    request.on_complete = [&callbacks_fired](CompileJob done) {
        if (done.poll() == JobStatus::Done)
            callbacks_fired.fetch_add(1, std::memory_order_relaxed);
    };
    CompileJob job = service.submit(request);
    std::cout << "job " << job.id() << " (\"" << job.tag() << "\"): "
              << toString(job.wait()) << "\n\n";

    std::cout << "Per-pass wall clock of circuit 0 (cold cache):\n"
              << formatPassReport(job.results().front().pass_metrics)
              << "\n";
    CompileJobStats job_stats = job.stats();
    std::cout << "job telemetry: queue wait mean "
              << fmtDouble(job_stats.queue_wait_ns_mean / 1e6, 3)
              << " ms, compile wall "
              << fmtDouble(job_stats.compile_wall_ms, 2)
              << " ms, cache hit ratio "
              << fmtDouble(job_stats.cache_hit_ratio, 3) << "\n";
    ProfileCacheStats stats = service.profileCache().stats();
    std::cout << formatCacheStats(stats.hits, stats.misses,
                                  stats.evictions, stats.entries)
              << "\n";

    // A warm cache turns every decomposition into a lookup: resubmit
    // the same workload and compare translation times.
    service.profileCache().resetStats();
    CompileJob warm = service.submit(request);
    warm.wait();
    std::cout << "\nPer-pass wall clock of circuit 0 (warm cache):\n"
              << formatPassReport(warm.results().front().pass_metrics)
              << "\n";
    std::cout << "warm job cache hit ratio: "
              << fmtDouble(warm.stats().cache_hit_ratio, 3) << "\n";
    stats = service.profileCache().stats();
    std::cout << formatCacheStats(stats.hits, stats.misses,
                                  stats.evictions, stats.entries)
              << "\n";

    // Dump everything the service streamed — job lifecycles, nested
    // per-pass spans, cache marks — as a Chrome trace.
    service.shutdown();
    recorder.stop();
    std::cout << "\ncompletion callbacks fired: "
              << callbacks_fired.load() << " of 2 submitted jobs\n";
    TraceExportOptions trace_options;
    trace_options.shard_names = {"line4"};
    trace_options.pass_names = events.passNames();
    const char* trace_path = "quickstart_trace.json";
    if (writeChromeTraceFile(trace_path, recorder.events(),
                             trace_options))
        std::cout << "\nWrote " << recorder.events().size()
                  << " telemetry events to " << trace_path
                  << " (open in https://ui.perfetto.dev).\n";
    return 0;
}
