/**
 * @file
 * Noise-adaptive compilation demo (the Fig. 5 scenario): compile a
 * QAOA circuit onto synthetic Rigetti Aspen-8 with a multi-gate
 * instruction set and show how NuOp picks different gate types on
 * different qubit pairs based on calibration data.
 */

#include <iostream>

#include "apps/qaoa.h"
#include "common/table.h"
#include "compiler/pipeline.h"
#include "metrics/metrics.h"

using namespace qiset;

int
main()
{
    Rng rng(7);
    Device aspen = makeAspen8(rng);
    std::cout << "Device: " << aspen.name() << " ("
              << aspen.numQubits() << " qubits, "
              << aspen.topology().numEdges() << " couplers)\n\n";

    Circuit app = makeRandomQaoaCircuit(4, rng);
    std::cout << "Application: 4-qubit QAOA MaxCut, "
              << app.twoQubitGateCount() << " ZZ interactions\n\n";

    ProfileCache cache;
    CompileOptions options;
    options.nuop.max_layers = 5;

    Table table({"gate set", "2Q count", "SWAPs", "type usage",
                 "est. fidelity", "XED"});
    auto ideal = idealProbabilities(app);

    for (int r = 1; r <= 5; ++r) {
        GateSet set = isa::rigettiSet(r);
        CompileResult result =
            compileCircuit(app, aspen, set, cache, options);
        auto noisy = simulateCompiled(result);

        std::string usage;
        for (const auto& [type, count] : result.type_usage)
            usage += type + ":" + std::to_string(count) + " ";

        table.addRow({set.name,
                      std::to_string(result.two_qubit_count),
                      std::to_string(result.swaps_inserted), usage,
                      fmtDouble(result.estimated_fidelity, 3),
                      fmtDouble(crossEntropyDifference(ideal, noisy),
                                3)});
    }
    table.print(std::cout);

    std::cout << "\nRicher instruction sets let the compiler route "
                 "around badly-calibrated\ngate types per edge "
                 "(XY(pi) is absent on several Aspen-8 pairs).\n";
    return 0;
}
