/**
 * @file
 * End-to-end compilation walkthrough: generate a QFT, compile it for
 * Sycamore under G7 (the paper's recommended instruction set), and
 * show the circuit before and after with compilation statistics.
 */

#include <iostream>

#include "apps/qft.h"
#include "circuit/draw.h"
#include "compiler/pipeline.h"
#include "metrics/metrics.h"

using namespace qiset;

int
main()
{
    Rng rng(21);
    Device sycamore = makeSycamore(rng);
    Circuit app = makeQftCircuit(4);

    std::cout << "Logical 4-qubit QFT (" << app.twoQubitGateCount()
              << " two-qubit ops):\n\n"
              << drawCircuit(app) << "\n";

    ProfileCache cache;
    CompileOptions options;
    options.nuop.max_layers = 5;
    CompileResult result =
        compileCircuit(app, sycamore, isa::googleSet(7), cache, options);

    std::cout << "Compiled for " << sycamore.name()
              << " under G7 (first 14 moments shown):\n\n"
              << drawCircuit(result.circuit, 14) << "\n";

    std::cout << "physical qubits:";
    for (int q : result.physical)
        std::cout << " " << q;
    std::cout << "\nrouting SWAPs inserted: " << result.swaps_inserted
              << "\nnative 2Q gates: " << result.two_qubit_count
              << "  (";
    for (const auto& [type, count] : result.type_usage)
        std::cout << type << ":" << count << " ";
    std::cout << ")\ncompiler fidelity estimate: "
              << result.estimated_fidelity << "\n";

    auto ideal = idealProbabilities(app);
    auto noisy = simulateCompiled(result);
    std::cout << "simulated TVD from ideal distribution: "
              << totalVariationDistance(ideal, noisy) << "\n";
    return 0;
}
